#pragma once

// Awaitable synchronization primitives.
//
// Every primitive wakes waiters by posting to the engine queue at the current
// timestamp rather than resuming inline: wakeup order is then a deterministic
// function of program order, and call stacks stay flat no matter how deep the
// protocol layering gets.

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "chk/audit.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace meshmp::sim {

/// `co_await delay(eng, d)` — suspends for d nanoseconds of simulated time.
struct DelayAwaiter {
  Engine& eng;
  Duration d;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    eng.schedule(d, [h] { h.resume(); }, "delay");
  }
  void await_resume() const noexcept {}
};

inline DelayAwaiter delay(Engine& eng, Duration d) { return {eng, d}; }

/// One-shot event. Waiters before fire() suspend; waiters after pass through.
class Trigger {
 public:
  explicit Trigger(Engine& eng) : eng_(&eng) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  [[nodiscard]] bool fired() const noexcept { return fired_; }

  void fire() {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) eng_->post(h);
    waiters_.clear();
  }

  auto wait() noexcept {
    struct Awaiter {
      Trigger& t;
      bool await_ready() const noexcept { return t.fired_; }
      void await_suspend(std::coroutine_handle<> h) { t.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine* eng_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Multi-shot notification: each notify_all() wakes everyone waiting *now*.
/// Use `wait_until(signal, pred)` for condition-variable style loops.
class Signal {
 public:
  explicit Signal(Engine& eng) : eng_(&eng) {}
  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  void notify_all() {
    for (auto h : waiters_) eng_->post(h);
    waiters_.clear();
  }

  auto next() noexcept {
    struct Awaiter {
      Signal& s;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { s.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  Engine* eng_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Suspends until pred() holds, re-checking after each signal notification.
template <typename Pred>
Task<> wait_until(Signal& signal, Pred pred) {
  while (!pred()) co_await signal.next();
}

/// Unbounded FIFO channel with awaitable pop. Values are handed directly to
/// the oldest waiter, so multiple consumers never race for one item.
template <typename T>
class Queue {
 public:
  explicit Queue(Engine& eng) : eng_(&eng) {}
  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  void push(T value) {
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      w.slot->emplace(std::move(value));
      eng_->post(w.h);
      return;
    }
    items_.push_back(std::move(value));
  }

  auto pop() noexcept {
    struct Awaiter {
      Queue& q;
      std::optional<T> slot{};
      bool await_ready() {
        if (q.items_.empty()) return false;
        slot.emplace(std::move(q.items_.front()));
        q.items_.pop_front();
        return true;
      }
      void await_suspend(std::coroutine_handle<> h) {
        q.waiters_.push_back(Waiter{h, &slot});
      }
      T await_resume() { return std::move(*slot); }
    };
    return Awaiter{*this};
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    std::optional<T> v{std::move(items_.front())};
    items_.pop_front();
    return v;
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    std::optional<T>* slot;
  };
  Engine* eng_;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

/// Counted resource with priority + FIFO granting. Priority 0 is the most
/// urgent (kernel interrupt work); larger numbers are less urgent.
class Resource {
 public:
  static constexpr int kInterruptPriority = 0;
  static constexpr int kKernelPriority = 1;
  static constexpr int kUserPriority = 2;

  /// `name` labels the resource in audit reports ("cpu", "bus", ...).
  Resource(Engine& eng, std::int64_t capacity, std::string name = "resource")
      : eng_(&eng),
        capacity_(capacity),
        name_(std::move(name)),
        audit_reg_(chk::Audit::instance().watch(
            "sim.resource." + name_, [this] { audit_quiesce(); })) {
    assert(capacity > 0);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] std::int64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::int64_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return waiters_.size();
  }
  /// Busy time integral so far (for utilization statistics).
  [[nodiscard]] Duration busy_time() const noexcept {
    Duration d = busy_;
    if (in_use_ > 0) d += eng_->now() - busy_since_;
    return d;
  }

  auto acquire(std::int64_t amount = 1, int priority = kUserPriority) {
    assert(amount > 0 && amount <= capacity_);
    struct Awaiter {
      Resource& r;
      std::int64_t amount;
      int priority;
      bool suspended = false;
      bool await_ready() const noexcept {
        return r.waiters_.empty() && r.in_use_ + amount <= r.capacity_;
      }
      void await_suspend(std::coroutine_handle<> h) {
        suspended = true;
        r.enqueue(Waiter{priority, r.next_seq_++, amount, h});
      }
      void await_resume() const {
        // A suspended waiter was granted capacity inside pump() before its
        // wake was posted, so nothing can steal it in between.
        if (!suspended) r.grant(amount);
      }
    };
    return Awaiter{*this, amount, priority};
  }

  void release(std::int64_t amount = 1) {
    assert(amount > 0 && amount <= in_use_);
    if (chk::Audit::enabled() && (amount <= 0 || amount > in_use_)) {
      chk::Audit::instance().fail(
          "sim.resource." + name_,
          "release(" + std::to_string(amount) + ") with only " +
              std::to_string(in_use_) + " of " + std::to_string(capacity_) +
              " in use");
    }
    ungrant(amount);
    pump();
  }

  /// Occupies `amount` of the resource for `dur`, queued at `priority`.
  /// This is the canonical way to model work on a CPU.
  Task<> consume(Duration dur, int priority = kUserPriority,
                 std::int64_t amount = 1) {
    co_await acquire(amount, priority);
    co_await delay(*eng_, dur);
    release(amount);
  }

 private:
  struct Waiter {
    int priority;
    std::uint64_t seq;
    std::int64_t amount;
    std::coroutine_handle<> h;
  };

  // Waiters kept sorted by (priority, seq): stable priority queue. The queue
  // is short in practice (a handful of protocol actors per node), so a vector
  // insert is fine.
  void enqueue(Waiter w) {
    auto it = waiters_.begin();
    while (it != waiters_.end() && !(w.priority < it->priority)) ++it;
    waiters_.insert(it, w);
  }

  void grant(std::int64_t amount) {
    if (in_use_ == 0) busy_since_ = eng_->now();
    in_use_ += amount;
  }

  void ungrant(std::int64_t amount) {
    in_use_ -= amount;
    if (in_use_ == 0) busy_ += eng_->now() - busy_since_;
  }

  void pump() {
    while (!waiters_.empty() &&
           in_use_ + waiters_.front().amount <= capacity_) {
      Waiter w = waiters_.front();
      waiters_.erase(waiters_.begin());
      grant(w.amount);
      eng_->post(w.h);
    }
  }

  /// Quiesce invariant: nothing held, nobody waiting. A violated check means
  /// a coroutine leaked a hold (acquire without release) or starved forever.
  void audit_quiesce() const {
    if (in_use_ != 0) {
      chk::Audit::instance().fail(
          "sim.resource." + name_,
          std::to_string(in_use_) + " of " + std::to_string(capacity_) +
              " still held at quiesce (leaked hold)");
    }
    if (!waiters_.empty()) {
      chk::Audit::instance().fail(
          "sim.resource." + name_,
          std::to_string(waiters_.size()) +
              " waiter(s) still queued at quiesce (starved acquire)");
    }
  }

  Engine* eng_;
  std::int64_t capacity_;
  std::int64_t in_use_ = 0;
  std::uint64_t next_seq_ = 0;
  Duration busy_ = 0;
  Time busy_since_ = 0;
  std::string name_;
  std::vector<Waiter> waiters_;
  chk::Audit::Registration audit_reg_;
};

/// Structured join for a set of concurrently spawned tasks.
/// Add tasks, then `co_await group.join()`; the first stored exception (if
/// any) is rethrown at the join point.
class TaskGroup {
 public:
  explicit TaskGroup(Engine& eng) : done_(eng) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void add(Task<> task) {
    ++pending_;
    wrap(std::move(task)).detach();
  }

  /// Adds a value-returning task; the value is discarded at the join.
  template <typename T>
  void add(Task<T> task) {
    add(drop_value(std::move(task)));
  }

  Task<> join() {
    while (pending_ > 0) co_await done_.next();
    if (error_) {
      auto e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

  [[nodiscard]] int pending() const noexcept { return pending_; }

 private:
  template <typename T>
  static Task<> drop_value(Task<T> task) {
    (void)co_await task;
  }

  Task<> wrap(Task<> task) {
    try {
      co_await task;
    } catch (...) {
      if (!error_) error_ = std::current_exception();
    }
    --pending_;
    done_.notify_all();
  }

  int pending_ = 0;
  Signal done_;
  std::exception_ptr error_;
};

}  // namespace meshmp::sim
