#pragma once

// Awaitable synchronization primitives.
//
// Every primitive wakes waiters by posting to the engine queue at the current
// timestamp rather than resuming inline: wakeup order is then a deterministic
// function of program order, and call stacks stay flat no matter how deep the
// protocol layering gets.
//
// Parallel engine: a primitive may be shared across logical processes (a
// TaskGroup joining rank coroutines that migrated to their nodes' LPs), so
// waiter lists are guarded by a chk::SimLock — zero-cost in the sequential
// engine, a real mutex during parallel windows. Wakes still go through
// Engine::post, so a woken coroutine migrates to its waker's LP. Signal
// carries a notification epoch and every wait loop captures the awaiter
// *before* testing its predicate; a notification landing between the test
// and the suspension is then observed by the awaiter instead of lost.

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "chk/audit.hpp"
#include "chk/parallel.hpp"
#include "chk/thread_annotations.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace meshmp::sim {

/// `co_await delay(eng, d)` — suspends for d nanoseconds of simulated time.
struct DelayAwaiter {
  Engine& eng;
  Duration d;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    eng.schedule(d, [h] { h.resume(); }, "delay");
  }
  void await_resume() const noexcept {}
};

inline DelayAwaiter delay(Engine& eng, Duration d) { return {eng, d}; }

/// One-shot event. Waiters before fire() suspend; waiters after pass through.
class Trigger {
 public:
  explicit Trigger(Engine& eng) : eng_(&eng) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  [[nodiscard]] bool fired() const noexcept {
    chk::SimLockGuard g(mu_);
    return fired_;
  }

  void fire() {
    std::vector<std::coroutine_handle<>> woken;
    {
      chk::SimLockGuard g(mu_);
      if (fired_) return;
      fired_ = true;
      woken.swap(waiters_);
    }
    for (auto h : woken) eng_->post(h);
  }

  auto wait() noexcept {
    struct Awaiter {
      Trigger& t;
      bool await_ready() const noexcept { return t.fired(); }
      bool await_suspend(std::coroutine_handle<> h) {
        chk::SimLockGuard g(t.mu_);
        if (t.fired_) return false;  // fired after the ready check: pass through
        t.waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine* eng_;
  mutable chk::SimLock mu_;
  bool fired_ MESHMP_GUARDED_BY(mu_) = false;
  std::vector<std::coroutine_handle<>> waiters_ MESHMP_GUARDED_BY(mu_);
};

/// Multi-shot notification: each notify_all() wakes everyone waiting *now*.
/// Use `wait_until(signal, pred)` for condition-variable style loops.
class Signal {
 public:
  explicit Signal(Engine& eng) : eng_(&eng) {}
  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  void notify_all() {
    std::vector<std::coroutine_handle<>> woken;
    {
      chk::SimLockGuard g(mu_);
      ++epoch_;
      woken.swap(waiters_);
    }
    for (auto h : woken) eng_->post(h);
    // Hand the emptied buffer's capacity back so the steady-state
    // notify/wait cycle stays allocation-free.
    woken.clear();
    chk::SimLockGuard g(mu_);
    if (waiters_.empty()) waiters_.swap(woken);
  }

  /// Awaits the next notification *after the awaiter was created*. Create
  /// the awaiter before testing the condition it guards (as wait_until
  /// does): a notify_all between the test and the co_await then resumes the
  /// waiter immediately instead of being lost.
  auto next() noexcept {
    struct Awaiter {
      Signal& s;
      std::uint64_t seen;
      explicit Awaiter(Signal& sig) : s(sig) {
        chk::SimLockGuard g(s.mu_);
        seen = s.epoch_;
      }
      bool await_ready() const noexcept {
        chk::SimLockGuard g(s.mu_);
        return s.epoch_ != seen;
      }
      bool await_suspend(std::coroutine_handle<> h) {
        chk::SimLockGuard g(s.mu_);
        if (s.epoch_ != seen) return false;  // notified since creation
        s.waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  [[nodiscard]] std::size_t waiting() const noexcept {
    chk::SimLockGuard g(mu_);
    return waiters_.size();
  }

 private:
  Engine* eng_;
  mutable chk::SimLock mu_;
  std::uint64_t epoch_ MESHMP_GUARDED_BY(mu_) = 0;
  std::vector<std::coroutine_handle<>> waiters_ MESHMP_GUARDED_BY(mu_);
};

/// Suspends until pred() holds, re-checking after each signal notification.
/// The awaiter is created before each predicate test so a notification
/// racing the test is caught by the awaiter's epoch instead of lost.
template <typename Pred>
Task<> wait_until(Signal& signal, Pred pred) {
  for (;;) {
    auto next = signal.next();
    if (pred()) break;
    co_await next;
  }
}

/// Unbounded FIFO channel with awaitable pop. Values are handed directly to
/// the oldest waiter, so multiple consumers never race for one item.
template <typename T>
class Queue {
 public:
  explicit Queue(Engine& eng) : eng_(&eng) {}
  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  void push(T value) {
    Waiter w{};
    {
      chk::SimLockGuard g(mu_);
      if (waiters_.empty()) {
        items_.push_back(std::move(value));
        return;
      }
      w = waiters_.front();
      waiters_.pop_front();
    }
    // The waiter is suspended until the posted wake runs, so its slot is
    // exclusively ours here.
    w.slot->emplace(std::move(value));
    eng_->post(w.h);
  }

  auto pop() noexcept {
    struct Awaiter {
      Queue& q;
      std::optional<T> slot{};
      bool await_ready() {
        chk::SimLockGuard g(q.mu_);
        return q.take(slot);
      }
      bool await_suspend(std::coroutine_handle<> h) {
        chk::SimLockGuard g(q.mu_);
        if (q.take(slot)) return false;  // pushed after the ready check
        q.waiters_.push_back(Waiter{h, &slot});
        return true;
      }
      T await_resume() { return std::move(*slot); }
    };
    return Awaiter{*this};
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    chk::SimLockGuard g(mu_);
    std::optional<T> v;
    take(v);
    return v;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    chk::SimLockGuard g(mu_);
    return items_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    std::optional<T>* slot;
  };

  /// Moves the head item into `slot` if there is one.
  bool take(std::optional<T>& slot) MESHMP_REQUIRES(mu_) {
    if (items_.empty()) return false;
    slot.emplace(std::move(items_.front()));
    items_.pop_front();
    return true;
  }

  Engine* eng_;
  mutable chk::SimLock mu_;
  std::deque<T> items_ MESHMP_GUARDED_BY(mu_);
  std::deque<Waiter> waiters_ MESHMP_GUARDED_BY(mu_);
};

/// Counted resource with priority + FIFO granting. Priority 0 is the most
/// urgent (kernel interrupt work); larger numbers are less urgent.
class Resource {
 public:
  static constexpr int kInterruptPriority = 0;
  static constexpr int kKernelPriority = 1;
  static constexpr int kUserPriority = 2;

  /// `name` labels the resource in audit reports ("cpu", "bus", ...).
  Resource(Engine& eng, std::int64_t capacity, std::string name = "resource")
      : eng_(&eng),
        capacity_(capacity),
        name_(std::move(name)),
        audit_reg_(chk::Audit::instance().watch(
            "sim.resource." + name_, [this] { audit_quiesce(); })) {
    assert(capacity > 0);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] std::int64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::int64_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return waiters_.size();
  }
  /// Busy time integral so far (for utilization statistics).
  [[nodiscard]] Duration busy_time() const noexcept {
    Duration d = busy_;
    if (in_use_ > 0) d += eng_->now() - busy_since_;
    return d;
  }

  auto acquire(std::int64_t amount = 1, int priority = kUserPriority) {
    assert(amount > 0 && amount <= capacity_);
    struct Awaiter {
      Resource& r;
      std::int64_t amount;
      int priority;
      bool suspended = false;
      bool await_ready() const noexcept {
        return r.waiters_.empty() && r.in_use_ + amount <= r.capacity_;
      }
      void await_suspend(std::coroutine_handle<> h) {
        suspended = true;
        r.enqueue(Waiter{priority, r.next_seq_++, amount, h});
      }
      void await_resume() const {
        // A suspended waiter was granted capacity inside pump() before its
        // wake was posted, so nothing can steal it in between.
        if (!suspended) r.grant(amount);
      }
    };
    return Awaiter{*this, amount, priority};
  }

  void release(std::int64_t amount = 1) {
    assert(amount > 0 && amount <= in_use_);
    if (chk::Audit::enabled() && (amount <= 0 || amount > in_use_)) {
      chk::Audit::instance().fail(
          "sim.resource." + name_,
          "release(" + std::to_string(amount) + ") with only " +
              std::to_string(in_use_) + " of " + std::to_string(capacity_) +
              " in use");
    }
    ungrant(amount);
    pump();
  }

  /// Occupies `amount` of the resource for `dur`, queued at `priority`.
  /// This is the canonical way to model work on a CPU.
  Task<> consume(Duration dur, int priority = kUserPriority,
                 std::int64_t amount = 1) {
    co_await acquire(amount, priority);
    co_await delay(*eng_, dur);
    release(amount);
  }

 private:
  struct Waiter {
    int priority;
    std::uint64_t seq;
    std::int64_t amount;
    std::coroutine_handle<> h;
  };

  // Waiters kept sorted by (priority, seq): stable priority queue. The queue
  // is short in practice (a handful of protocol actors per node), so a vector
  // insert is fine.
  void enqueue(Waiter w) {
    auto it = waiters_.begin();
    while (it != waiters_.end() && !(w.priority < it->priority)) ++it;
    waiters_.insert(it, w);
  }

  void grant(std::int64_t amount) {
    if (in_use_ == 0) busy_since_ = eng_->now();
    in_use_ += amount;
  }

  void ungrant(std::int64_t amount) {
    in_use_ -= amount;
    if (in_use_ == 0) busy_ += eng_->now() - busy_since_;
  }

  void pump() {
    while (!waiters_.empty() &&
           in_use_ + waiters_.front().amount <= capacity_) {
      Waiter w = waiters_.front();
      waiters_.erase(waiters_.begin());
      grant(w.amount);
      eng_->post(w.h);
    }
  }

  /// Quiesce invariant: nothing held, nobody waiting. A violated check means
  /// a coroutine leaked a hold (acquire without release) or starved forever.
  void audit_quiesce() const {
    if (in_use_ != 0) {
      chk::Audit::instance().fail(
          "sim.resource." + name_,
          std::to_string(in_use_) + " of " + std::to_string(capacity_) +
              " still held at quiesce (leaked hold)");
    }
    if (!waiters_.empty()) {
      chk::Audit::instance().fail(
          "sim.resource." + name_,
          std::to_string(waiters_.size()) +
              " waiter(s) still queued at quiesce (starved acquire)");
    }
  }

  Engine* eng_;
  std::int64_t capacity_;
  std::int64_t in_use_ = 0;
  std::uint64_t next_seq_ = 0;
  Duration busy_ = 0;
  Time busy_since_ = 0;
  std::string name_;
  std::vector<Waiter> waiters_;
  chk::Audit::Registration audit_reg_;
};

/// Structured join for a set of concurrently spawned tasks.
/// Add tasks, then `co_await group.join()`; the first stored exception (if
/// any) is rethrown at the join point.
class TaskGroup {
 public:
  explicit TaskGroup(Engine& eng) : done_(eng) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void add(Task<> task) {
    pending_.add(1);
    wrap(std::move(task)).detach();
  }

  /// Adds a value-returning task; the value is discarded at the join.
  template <typename T>
  void add(Task<T> task) {
    add(drop_value(std::move(task)));
  }

  Task<> join() {
    for (;;) {
      auto next = done_.next();  // created before the test: no lost wakeup
      if (pending_.load() == 0) break;
      co_await next;
    }
    std::exception_ptr e;
    {
      chk::SimLockGuard g(err_mu_);
      e = std::exchange(error_, nullptr);
    }
    if (e) std::rethrow_exception(e);
  }

  [[nodiscard]] int pending() const noexcept {
    return static_cast<int>(pending_.load());
  }

 private:
  template <typename T>
  static Task<> drop_value(Task<T> task) {
    (void)co_await task;
  }

  Task<> wrap(Task<> task) {
    try {
      co_await task;
    } catch (...) {
      chk::SimLockGuard g(err_mu_);
      if (!error_) error_ = std::current_exception();
    }
    // Order matters: the join loop re-reads pending_ after observing the
    // epoch bump, so the decrement must come first.
    pending_.sub(1);
    done_.notify_all();
  }

  chk::SharedCount pending_;
  Signal done_;
  mutable chk::SimLock err_mu_;
  std::exception_ptr error_ MESHMP_GUARDED_BY(err_mu_);
};

}  // namespace meshmp::sim
