#pragma once

// Simulated-time types.
//
// The whole simulator runs on a single int64 nanosecond clock. Nanosecond
// resolution is fine for the modelled hardware: one byte on a 1 Gbit/s wire
// takes 8 ns, and every modelled host overhead is >= 100 ns.

#include <cstdint>

namespace meshmp::sim {

/// Absolute simulated time in nanoseconds since simulation start.
using Time = std::int64_t;

/// A span of simulated time in nanoseconds.
using Duration = std::int64_t;

inline namespace literals {

constexpr Duration operator""_ns(unsigned long long v) {
  return static_cast<Duration>(v);
}
constexpr Duration operator""_us(unsigned long long v) {
  return static_cast<Duration>(v) * 1000;
}
constexpr Duration operator""_us(long double v) {
  return static_cast<Duration>(v * 1000.0L);
}
constexpr Duration operator""_ms(unsigned long long v) {
  return static_cast<Duration>(v) * 1'000'000;
}
constexpr Duration operator""_ms(long double v) {
  return static_cast<Duration>(v * 1'000'000.0L);
}
constexpr Duration operator""_s(unsigned long long v) {
  return static_cast<Duration>(v) * 1'000'000'000;
}
constexpr Duration operator""_s(long double v) {
  return static_cast<Duration>(v * 1'000'000'000.0L);
}

}  // namespace literals

/// Converts a duration to (double) microseconds, the unit the paper reports.
constexpr double to_us(Duration d) { return static_cast<double>(d) / 1000.0; }

/// Converts a duration to (double) seconds.
constexpr double to_sec(Duration d) {
  return static_cast<double>(d) / 1e9;
}

/// Time to move `bytes` at `bytes_per_sec`, rounded up to whole nanoseconds.
constexpr Duration transfer_time(std::int64_t bytes, double bytes_per_sec) {
  if (bytes <= 0) return 0;
  const double ns = static_cast<double>(bytes) * 1e9 / bytes_per_sec;
  const auto whole = static_cast<Duration>(ns);
  return whole + (static_cast<double>(whole) < ns ? 1 : 0);
}

/// Observed rate in MB/s (decimal, as the paper uses) for bytes over elapsed.
constexpr double rate_mb_per_s(std::int64_t bytes, Duration elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) / 1e6 / to_sec(elapsed);
}

}  // namespace meshmp::sim
