#pragma once

// The single seam through which every *modeled* payload copy is charged.
//
// The simulator distinguishes simulated copies (cost CPU time in the model:
// bounce-buffer staging, rx-ISR gather, socket-buffer drain) from host-side
// byte movement (a simulation artifact, now mostly eliminated by buf::Slice
// refcounting). Charging all modeled copies through charge_copy() keeps the
// two decoupled and lets tests assert exactly how many bytes the *model*
// copied on a given path — e.g. that a rendezvous transfer moves each
// payload byte exactly once.
//
// Works with both charging contexts without buf depending on hw:
//   hw::IsrContext  -> spend_copy(bytes, hot)   (interrupt context)
//   hw::Cpu         -> copy(bytes, hot)         (process context, kUser)

#include <cstdint>

namespace meshmp::buf {

/// Process-wide tally of modeled copy charges (host-copy-free accounting).
struct CopyStats {
  std::uint64_t copies = 0;  ///< number of charge_copy calls
  std::uint64_t bytes = 0;   ///< total bytes charged
};

CopyStats& copy_stats_mut() noexcept;

inline const CopyStats& copy_stats() noexcept { return copy_stats_mut(); }
inline void reset_copy_stats() noexcept { copy_stats_mut() = {}; }

/// Charge one modeled copy of `bytes` to `charger` (awaitable). `hot` is the
/// model's cache-residency hint, passed through unchanged.
template <typename Charger>
auto charge_copy(Charger& charger, std::int64_t bytes, bool hot) {
  auto& stats = copy_stats_mut();
  ++stats.copies;
  stats.bytes += static_cast<std::uint64_t>(bytes);
  if constexpr (requires { charger.spend_copy(bytes, hot); }) {
    return charger.spend_copy(bytes, hot);
  } else {
    return charger.copy(bytes, hot);
  }
}

}  // namespace meshmp::buf
