#pragma once

// The single seam through which every *modeled* payload copy is charged.
//
// The simulator distinguishes simulated copies (cost CPU time in the model:
// bounce-buffer staging, rx-ISR gather, socket-buffer drain) from host-side
// byte movement (a simulation artifact, now mostly eliminated by buf::Slice
// refcounting). Charging all modeled copies through charge_copy() keeps the
// two decoupled and lets tests assert exactly how many bytes the *model*
// copied on a given path — e.g. that a rendezvous transfer moves each
// payload byte exactly once.
//
// Works with both charging contexts without buf depending on hw:
//   hw::IsrContext  -> spend_copy(bytes, hot)   (interrupt context)
//   hw::Cpu         -> copy(bytes, hot)         (process context, kUser)

#include <cstdint>

#include "chk/parallel.hpp"

namespace meshmp::buf {

/// Point-in-time snapshot of the modeled copy charges (by value: the live
/// tally is charged from every logical process, so callers get a coherent
/// copy instead of a reference into shared counters).
struct CopyStats {
  std::uint64_t copies = 0;  ///< number of charge_copy calls
  std::uint64_t bytes = 0;   ///< total bytes charged
};

namespace detail {
/// The live tally. chk::SharedCount64: rx-ISR gather and socket drains
/// charge copies on their nodes' LPs, concurrently during parallel windows.
struct CopyTally {
  chk::SharedCount64 copies;
  chk::SharedCount64 bytes;
};
CopyTally& copy_tally() noexcept;
}  // namespace detail

[[nodiscard]] inline CopyStats copy_stats() noexcept {
  auto& t = detail::copy_tally();
  return {t.copies.load(), t.bytes.load()};
}
inline void reset_copy_stats() noexcept {
  auto& t = detail::copy_tally();
  t.copies.store(0);
  t.bytes.store(0);
}

/// Charge one modeled copy of `bytes` to `charger` (awaitable). `hot` is the
/// model's cache-residency hint, passed through unchanged.
template <typename Charger>
auto charge_copy(Charger& charger, std::int64_t bytes, bool hot) {
  auto& t = detail::copy_tally();
  t.copies.add(1);
  t.bytes.add(static_cast<std::uint64_t>(bytes));
  if constexpr (requires { charger.spend_copy(bytes, hot); }) {
    return charger.spend_copy(bytes, hot);
  } else {
    return charger.copy(bytes, hot);
  }
}

}  // namespace meshmp::buf
