#include "buf/pool.hpp"

#include <bit>
#include <string>
#include <utility>

#include "buf/copy.hpp"

namespace meshmp::buf {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

/// Class of the smallest power of two >= bytes: every vector stored in this
/// class (capacity in [2^k, 2^(k+1))) can serve the request.
std::size_t class_for_request(std::size_t bytes) {
  if (bytes <= 1) return 0;
  return static_cast<std::size_t>(std::bit_width(bytes - 1));
}

/// Class a vector's capacity files under.
std::size_t class_for_capacity(std::size_t capacity) {
  return static_cast<std::size_t>(std::bit_width(capacity)) - 1;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  std::uint32_t c = 0xffffffffu;
  for (std::byte b : data) {
    c = kCrcTable[(c ^ static_cast<std::uint32_t>(b)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

// --- Slice -----------------------------------------------------------------

Slice::Slice(const Slice& other) noexcept
    : ctrl_(other.ctrl_),
      off_(other.off_),
      len_(other.len_),
      crc_(other.crc_),
      crc_known_(other.crc_known_) {
  if (ctrl_ != nullptr) ++ctrl_->refs;
}

Slice::Slice(Slice&& other) noexcept
    : ctrl_(std::exchange(other.ctrl_, nullptr)),
      off_(std::exchange(other.off_, 0)),
      len_(std::exchange(other.len_, 0)),
      crc_(other.crc_),
      crc_known_(std::exchange(other.crc_known_, false)) {}

Slice& Slice::operator=(const Slice& other) noexcept {
  if (this == &other) return *this;
  if (other.ctrl_ != nullptr) ++other.ctrl_->refs;
  release();
  ctrl_ = other.ctrl_;
  off_ = other.off_;
  len_ = other.len_;
  crc_ = other.crc_;
  crc_known_ = other.crc_known_;
  return *this;
}

Slice& Slice::operator=(Slice&& other) noexcept {
  if (this == &other) return *this;
  release();
  ctrl_ = std::exchange(other.ctrl_, nullptr);
  off_ = std::exchange(other.off_, 0);
  len_ = std::exchange(other.len_, 0);
  crc_ = other.crc_;
  crc_known_ = std::exchange(other.crc_known_, false);
  return *this;
}

void Slice::release() noexcept {
  if (ctrl_ != nullptr && --ctrl_->refs == 0) {
    Pool::instance().retire(ctrl_);
  }
  ctrl_ = nullptr;
  len_ = 0;
  off_ = 0;
  crc_known_ = false;
}

Slice Slice::subslice(std::size_t off, std::size_t len) const {
  if (len == 0 || ctrl_ == nullptr) return {};
  if (off == 0 && len == len_) return *this;  // keeps the CRC memo
  ++ctrl_->refs;
  return {ctrl_, off_ + off, len};
}

Slice Slice::corrupted(std::size_t index, std::byte mask) const {
  std::vector<std::byte> copy = to_vector();
  copy[index] ^= mask;
  return Pool::instance().adopt(std::move(copy));
}

std::uint32_t Slice::crc() const {
  if (!crc_known_) {
    crc_ = crc32(span());
    crc_known_ = true;
  }
  return crc_;
}

// --- Buffer ----------------------------------------------------------------

Buffer& Buffer::operator=(Buffer&& other) noexcept {
  if (this == &other) return *this;
  if (live_) Pool::instance().give_back(std::move(vec_));
  vec_ = std::move(other.vec_);
  live_ = std::exchange(other.live_, false);
  return *this;
}

Buffer::~Buffer() {
  if (live_) Pool::instance().give_back(std::move(vec_));
}

std::vector<std::byte> Buffer::release() && {
  if (live_) {
    live_ = false;
    Pool::instance().disown_one();
  }
  return std::move(vec_);
}

// --- Pool ------------------------------------------------------------------

Pool& Pool::instance() {
  static Pool pool;
  return pool;
}

Pool::Pool()
    : audit_reg_(chk::Audit::instance().watch(
          "buf.pool", [this] { audit_outstanding(); })) {}

void Pool::audit_outstanding() const {
  chk::SimLockGuard g(pool_mu_);
  if (outstanding_ != 0) {
    chk::Audit::instance().fail(
        "buf.pool", std::to_string(outstanding_) +
                        " pooled buffer(s)/slice(s) not returned");
  }
}

Buffer Pool::get(std::size_t bytes) {
  std::vector<std::byte> v;
  {
    chk::SimLockGuard g(pool_mu_);
    v = obtain(bytes);
    ++outstanding_;
  }
  // Zero-fill recycled storage so stale bytes can never leak into a fresh
  // message; also preserves the seed's "reassembly starts zeroed" behavior.
  // Host byte work happens outside the pool lock.
  v.assign(bytes, std::byte{0});
  return Buffer(std::move(v));
}

Slice Pool::stage(std::span<const std::byte> src) {
  if (src.empty()) return {};
  chk::SimLockGuard g(pool_mu_);
  std::vector<std::byte> v = obtain(src.size());
  v.assign(src.begin(), src.end());
  return wrap(std::move(v));
}

Slice Pool::adopt(std::vector<std::byte> v) {
  if (v.empty()) return {};
  chk::SimLockGuard g(pool_mu_);
  ++stats_.adopts;
  return wrap(std::move(v));
}

std::vector<std::byte> Pool::obtain(std::size_t bytes) {
  for (std::size_t k = class_for_request(bytes); k < kClasses; ++k) {
    if (!free_[k].empty()) {
      std::vector<std::byte> v = std::move(free_[k].back());
      free_[k].pop_back();
      ++stats_.pool_hits;
      return v;
    }
  }
  ++stats_.pool_misses;
  std::vector<std::byte> v;
  v.reserve(bytes);
  return v;
}

void Pool::recycle(std::vector<std::byte> v) noexcept {
  if (v.capacity() == 0) return;
  std::size_t k = class_for_capacity(v.capacity());
  if (k < kClasses && free_[k].size() < kMaxFreePerClass) {
    free_[k].push_back(std::move(v));
  }
}

Slice Pool::wrap(std::vector<std::byte> v) {
  std::size_t n = v.size();
  auto* ctrl = new detail::Ctrl{std::move(v), 1};
  ++outstanding_;
  return {ctrl, 0, n};
}

void Pool::retire(detail::Ctrl* ctrl) noexcept {
  {
    chk::SimLockGuard g(pool_mu_);
    recycle(std::move(ctrl->bytes));
    --outstanding_;
  }
  delete ctrl;
}

void Pool::give_back(std::vector<std::byte> v) noexcept {
  chk::SimLockGuard g(pool_mu_);
  recycle(std::move(v));
  --outstanding_;
}

void Pool::disown_one() noexcept {
  chk::SimLockGuard g(pool_mu_);
  --outstanding_;
}

// --- copy accounting (declared in copy.hpp) --------------------------------

CopyStats& copy_stats_mut() noexcept {
  static CopyStats stats;
  return stats;
}

}  // namespace meshmp::buf
