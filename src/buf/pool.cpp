#include "buf/pool.hpp"

#include <bit>
#include <cstring>
#include <string>
#include <utility>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "buf/copy.hpp"

namespace meshmp::buf {

namespace {

// Slice-by-8 CRC tables: kCrcTable[j][b] is the CRC of byte b followed by j
// zero bytes, so eight lookups fold eight input bytes per iteration. Table 0
// is the classic single-byte table; outputs are bit-identical to the
// byte-at-a-time loop for every input.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::size_t j = 1; j < 8; ++j) {
    for (std::size_t i = 0; i < 256; ++i) {
      t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xffu];
    }
  }
  return t;
}

constexpr auto kCrcTable = make_crc_tables();

#if defined(__x86_64__) && defined(__GNUC__)
#define MESHMP_CRC_PCLMUL 1
#endif

#if MESHMP_CRC_PCLMUL

// Carry-less-multiplication CRC folding (Intel's PCLMULQDQ scheme for the
// bit-reflected IEEE 802.3 polynomial, as deployed in zlib). Folds 64 bytes
// per iteration, then 16, then Barrett-reduces to 32 bits. Produces exactly
// the table-driven result for every input; dispatched at runtime so the
// table loop remains the portable fallback.
//
// Folding constants: x^(t) mod P for the strides used below (t = 4*128+64,
// 4*128, 128+64, 128, 64) plus the Barrett pair (P', mu).
alignas(16) constexpr std::uint64_t kFold512[2] = {0x0154442bd4,
                                                  0x01c6e41596};
alignas(16) constexpr std::uint64_t kFold128[2] = {0x01751997d0,
                                                  0x00ccaa009e};
alignas(16) constexpr std::uint64_t kFold64[2] = {0x0163cd6124, 0};
alignas(16) constexpr std::uint64_t kBarrett[2] = {0x01db710641,
                                                  0x01f7011641};

/// Processes n bytes (n >= 64 and n % 16 == 0), mapping the raw CRC register
/// state c (already pre/post-conditioned by the caller) to the new state.
__attribute__((target("pclmul,sse4.1"))) std::uint32_t crc32_clmul(
    const std::byte* p, std::size_t n, std::uint32_t c) {
  const auto* buf = reinterpret_cast<const __m128i*>(p);
  __m128i x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(kFold512));
  __m128i x1 = _mm_loadu_si128(buf + 0);
  __m128i x2 = _mm_loadu_si128(buf + 1);
  __m128i x3 = _mm_loadu_si128(buf + 2);
  __m128i x4 = _mm_loadu_si128(buf + 3);
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(c)));
  buf += 4;
  n -= 64;
  while (n >= 64) {
    __m128i x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    __m128i x6 = _mm_clmulepi64_si128(x2, x0, 0x00);
    __m128i x7 = _mm_clmulepi64_si128(x3, x0, 0x00);
    __m128i x8 = _mm_clmulepi64_si128(x4, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x11);
    x3 = _mm_clmulepi64_si128(x3, x0, 0x11);
    x4 = _mm_clmulepi64_si128(x4, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), _mm_loadu_si128(buf + 0));
    x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), _mm_loadu_si128(buf + 1));
    x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), _mm_loadu_si128(buf + 2));
    x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), _mm_loadu_si128(buf + 3));
    buf += 4;
    n -= 64;
  }
  // Fold the four lanes into one.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(kFold128));
  __m128i x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x2);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x3);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x4);
  while (n >= 16) {
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), _mm_loadu_si128(buf));
    ++buf;
    n -= 16;
  }
  // 128 -> 64 bits.
  __m128i mask = _mm_setr_epi32(~0, 0, ~0, 0);
  x2 = _mm_clmulepi64_si128(x1, x0, 0x10);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x2);
  x0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(kFold64));
  x2 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);
  // Barrett reduction 64 -> 32 bits.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(kBarrett));
  x2 = _mm_and_si128(x1, mask);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x10);
  x2 = _mm_and_si128(x2, mask);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);
  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

bool crc_clmul_supported() {
  static const bool ok = __builtin_cpu_supports("pclmul") != 0 &&
                         __builtin_cpu_supports("sse4.1") != 0;
  return ok;
}

#endif  // MESHMP_CRC_PCLMUL

/// Class of the smallest power of two >= bytes: every vector stored in this
/// class (capacity in [2^k, 2^(k+1))) can serve the request.
std::size_t class_for_request(std::size_t bytes) {
  if (bytes <= 1) return 0;
  return static_cast<std::size_t>(std::bit_width(bytes - 1));
}

/// Class a vector's capacity files under.
std::size_t class_for_capacity(std::size_t capacity) {
  return static_cast<std::size_t>(std::bit_width(capacity)) - 1;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  std::uint32_t c = 0xffffffffu;
  const std::byte* p = data.data();
  std::size_t n = data.size();
#if MESHMP_CRC_PCLMUL
  if (n >= 64 && crc_clmul_supported()) {
    const std::size_t chunk = n & ~static_cast<std::size_t>(15);
    c = crc32_clmul(p, chunk, c);
    p += chunk;
    n -= chunk;
  }
#endif
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      // meshmp-lint: host-copy(word loads for the CRC kernel — no modeled
      // bytes move, this is how the checksum hardware model reads its input)
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      c ^= lo;
      c = kCrcTable[7][c & 0xffu] ^ kCrcTable[6][(c >> 8) & 0xffu] ^
          kCrcTable[5][(c >> 16) & 0xffu] ^ kCrcTable[4][c >> 24] ^
          kCrcTable[3][hi & 0xffu] ^ kCrcTable[2][(hi >> 8) & 0xffu] ^
          kCrcTable[1][(hi >> 16) & 0xffu] ^ kCrcTable[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  for (; n > 0; --n, ++p) {
    c = kCrcTable[0][(c ^ static_cast<std::uint32_t>(*p)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

// --- Slice -----------------------------------------------------------------

Slice::Slice(const Slice& other) noexcept
    : ctrl_(other.ctrl_),
      off_(other.off_),
      len_(other.len_),
      crc_(other.crc_),
      crc_known_(other.crc_known_) {
  if (ctrl_ != nullptr) ctrl_->refs.add(1);
}

Slice::Slice(Slice&& other) noexcept
    : ctrl_(std::exchange(other.ctrl_, nullptr)),
      off_(std::exchange(other.off_, 0)),
      len_(std::exchange(other.len_, 0)),
      crc_(other.crc_),
      crc_known_(std::exchange(other.crc_known_, false)) {}

Slice& Slice::operator=(const Slice& other) noexcept {
  if (this == &other) return *this;
  if (other.ctrl_ != nullptr) other.ctrl_->refs.add(1);
  release();
  ctrl_ = other.ctrl_;
  off_ = other.off_;
  len_ = other.len_;
  crc_ = other.crc_;
  crc_known_ = other.crc_known_;
  return *this;
}

Slice& Slice::operator=(Slice&& other) noexcept {
  if (this == &other) return *this;
  release();
  ctrl_ = std::exchange(other.ctrl_, nullptr);
  off_ = std::exchange(other.off_, 0);
  len_ = std::exchange(other.len_, 0);
  crc_ = other.crc_;
  crc_known_ = std::exchange(other.crc_known_, false);
  return *this;
}

void Slice::release() noexcept {
  if (ctrl_ != nullptr && ctrl_->refs.sub(1) == 0) {
    Pool::instance().retire(ctrl_);
  }
  ctrl_ = nullptr;
  len_ = 0;
  off_ = 0;
  crc_known_ = false;
}

Slice Slice::subslice(std::size_t off, std::size_t len) const {
  if (len == 0 || ctrl_ == nullptr) return {};
  if (off == 0 && len == len_) return *this;  // keeps the CRC memo
  ctrl_->refs.add(1);
  return {ctrl_, off_ + off, len};
}

Slice Slice::corrupted(std::size_t index, std::byte mask) const {
  std::vector<std::byte> copy = to_vector();
  copy[index] ^= mask;
  return Pool::instance().adopt(std::move(copy));
}

std::uint32_t Slice::crc() const {
  if (!crc_known_) {
    crc_ = crc32(span());
    crc_known_ = true;
  }
  return crc_;
}

// --- Buffer ----------------------------------------------------------------

Buffer& Buffer::operator=(Buffer&& other) noexcept {
  if (this == &other) return *this;
  if (live_) Pool::instance().give_back(std::move(vec_));
  vec_ = std::move(other.vec_);
  live_ = std::exchange(other.live_, false);
  return *this;
}

Buffer::~Buffer() {
  if (live_) Pool::instance().give_back(std::move(vec_));
}

std::vector<std::byte> Buffer::release() && {
  if (live_) {
    live_ = false;
    Pool::instance().disown_one();
  }
  return std::move(vec_);
}

// --- Pool ------------------------------------------------------------------

Pool& Pool::instance() {
  static Pool pool;
  return pool;
}

Pool::Pool()
    : audit_reg_(chk::Audit::instance().watch(
          "buf.pool", [this] { audit_outstanding(); })) {}

void Pool::audit_outstanding() const {
  chk::SimLockGuard g(pool_mu_);
  if (outstanding_ != 0) {
    chk::Audit::instance().fail(
        "buf.pool", std::to_string(outstanding_) +
                        " pooled buffer(s)/slice(s) not returned");
  }
}

Buffer Pool::get(std::size_t bytes) {
  std::vector<std::byte> v;
  {
    chk::SimLockGuard g(pool_mu_);
    v = obtain(bytes);
    ++outstanding_;
  }
  // Zero-fill recycled storage so stale bytes can never leak into a fresh
  // message; also preserves the seed's "reassembly starts zeroed" behavior.
  // Host byte work happens outside the pool lock.
  v.assign(bytes, std::byte{0});
  return Buffer(std::move(v));
}

Slice Pool::stage(std::span<const std::byte> src) {
  if (src.empty()) return {};
  chk::SimLockGuard g(pool_mu_);
  std::vector<std::byte> v = obtain(src.size());
  v.assign(src.begin(), src.end());
  return wrap(std::move(v));
}

Slice Pool::adopt(std::vector<std::byte> v) {
  if (v.empty()) return {};
  chk::SimLockGuard g(pool_mu_);
  ++stats_.adopts;
  return wrap(std::move(v));
}

std::vector<std::byte> Pool::obtain(std::size_t bytes) {
  for (std::size_t k = class_for_request(bytes); k < kClasses; ++k) {
    if (!free_[k].empty()) {
      std::vector<std::byte> v = std::move(free_[k].back());
      free_[k].pop_back();
      ++stats_.pool_hits;
      return v;
    }
  }
  ++stats_.pool_misses;
  std::vector<std::byte> v;
  v.reserve(bytes);
  return v;
}

void Pool::recycle(std::vector<std::byte> v) noexcept {
  if (v.capacity() == 0) return;
  std::size_t k = class_for_capacity(v.capacity());
  if (k < kClasses && free_[k].size() < kMaxFreePerClass) {
    free_[k].push_back(std::move(v));
  }
}

Slice Pool::wrap(std::vector<std::byte> v) {
  std::size_t n = v.size();
  auto* ctrl = new detail::Ctrl{std::move(v), chk::SharedCount{1}};
  ++outstanding_;
  return {ctrl, 0, n};
}

void Pool::retire(detail::Ctrl* ctrl) noexcept {
  {
    chk::SimLockGuard g(pool_mu_);
    recycle(std::move(ctrl->bytes));
    --outstanding_;
  }
  delete ctrl;
}

void Pool::give_back(std::vector<std::byte> v) noexcept {
  chk::SimLockGuard g(pool_mu_);
  recycle(std::move(v));
  --outstanding_;
}

void Pool::disown_one() noexcept {
  chk::SimLockGuard g(pool_mu_);
  --outstanding_;
}

// --- copy accounting (declared in copy.hpp) --------------------------------

detail::CopyTally& detail::copy_tally() noexcept {
  static CopyTally tally;
  return tally;
}

}  // namespace meshmp::buf
