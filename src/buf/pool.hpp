#pragma once

// Reference-counted pooled payload buffers for the simulated data path.
//
// The simulator models copy costs explicitly (hw::Cpu::copy,
// hw::IsrContext::spend_copy — both reached through buf::charge_copy in
// copy.hpp); any other byte movement is a simulation artifact and must not
// cost host time. This module decouples the two:
//
//  * Pool::get(n)    -> Buffer: mutable zero-filled scratch (reassembly).
//  * Pool::stage(s)  -> Slice:  bytes copied into a pooled buffer — the one
//                               host copy that matches a modeled copy.
//  * Pool::adopt(v)  -> Slice:  take ownership of an existing vector, no copy.
//  * Slice::subslice -> aliasing offset/length view; refcount bump only.
//
// Slices are immutable views, so a frame forwarded over many hops, queued
// for retransmit, and reassembled at the receiver all alias one storage
// block. Wire corruption goes through Slice::corrupted(), which produces a
// detached copy-on-write slice: the original (e.g. a sender's retransmit
// queue entry) is never altered, and the detached copy carries no CRC memo,
// so Frame::checksum_ok still genuinely detects the flip.
//
// Storage vectors are recycled through per-capacity-class free lists
// (class k holds capacities in [2^k, 2^(k+1))), so steady-state traffic
// performs no heap allocation for payload bytes. The pool is process-wide
// shared state under the PDES engine, so the free lists, the outstanding
// count and the stats are guarded by pool_mu_ (a zero-cost chk::SimLock in
// the sequential engine). Slice refcounts are chk::SharedCount: payload
// views of a forwarded frame cross logical processes, so bumps and releases
// can happen from different workers inside one parallel window.
//
// A chk::Audit validator ("buf.pool") reports any Buffer or Slice not
// returned at quiesce, catching leaked references in protocol state.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "chk/audit.hpp"
#include "chk/parallel.hpp"
#include "chk/thread_annotations.hpp"

namespace meshmp::buf {

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected) over a byte range.
/// Lives here so Slice can memoize it; net::crc32 forwards to this.
std::uint32_t crc32(std::span<const std::byte> data);

class Pool;
class Buffer;

namespace detail {
/// Shared storage block behind one or more Slices. The refcount is a
/// chk::SharedCount: a forwarded frame's payload view crosses logical
/// processes, so copies and releases can race during a parallel window
/// (plain increments in the sequential engine, atomics under mt_active).
struct Ctrl {
  std::vector<std::byte> bytes;
  chk::SharedCount refs;
};
}  // namespace detail

/// Immutable offset/length view into pooled storage. Copying a Slice bumps
/// a refcount; the storage returns to the pool when the last view dies.
/// Carries a memoized CRC so per-hop checksum verification of an unchanged
/// payload costs O(1).
class Slice {
 public:
  Slice() noexcept = default;
  Slice(const Slice& other) noexcept;
  Slice(Slice&& other) noexcept;
  Slice& operator=(const Slice& other) noexcept;
  Slice& operator=(Slice&& other) noexcept;
  ~Slice() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return len_; }
  [[nodiscard]] bool empty() const noexcept { return len_ == 0; }
  [[nodiscard]] const std::byte* data() const noexcept {
    return ctrl_ ? ctrl_->bytes.data() + off_ : nullptr;
  }
  [[nodiscard]] std::span<const std::byte> span() const noexcept {
    return {data(), len_};
  }
  [[nodiscard]] const std::byte* begin() const noexcept { return data(); }
  [[nodiscard]] const std::byte* end() const noexcept {
    return data() + len_;
  }
  std::byte operator[](std::size_t i) const noexcept { return data()[i]; }

  /// Aliasing sub-view; shares (and pins) the same storage block.
  [[nodiscard]] Slice subslice(std::size_t off, std::size_t len) const;

  /// Detached mutated copy with byte `index` XOR-ed by `mask`. The copy has
  /// no CRC memo, so a stamped checksum genuinely mismatches afterwards.
  [[nodiscard]] Slice corrupted(std::size_t index, std::byte mask) const;

  /// Copies the view out into a plain vector (user-boundary materialization).
  [[nodiscard]] std::vector<std::byte> to_vector() const {
    return {begin(), end()};
  }

  /// Memoized CRC-32 of the view (0 for an empty view).
  [[nodiscard]] std::uint32_t crc() const;

 private:
  friend class Pool;
  Slice(detail::Ctrl* ctrl, std::size_t off, std::size_t len) noexcept
      : ctrl_(ctrl), off_(off), len_(len) {}
  void release() noexcept;

  detail::Ctrl* ctrl_ = nullptr;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
  // CRC memo: copied along with the view, invalidated only by detachment
  // (corrupted()), which is the sole way the bytes a view sees can change.
  mutable std::uint32_t crc_ = 0;
  mutable bool crc_known_ = false;
};

/// Mutable, uniquely owned pooled scratch buffer — used to gather fragments
/// during reassembly. Convert to user data with release() (steals the
/// vector: no copy at the completion boundary) or share it via
/// Pool::adopt(std::move(buffer).release()).
class Buffer {
 public:
  Buffer() noexcept = default;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  Buffer(Buffer&& other) noexcept
      : vec_(std::move(other.vec_)), live_(other.live_) {
    other.live_ = false;
  }
  Buffer& operator=(Buffer&& other) noexcept;
  ~Buffer();

  [[nodiscard]] std::size_t size() const noexcept { return vec_.size(); }
  [[nodiscard]] std::byte* data() noexcept { return vec_.data(); }
  [[nodiscard]] std::span<std::byte> span() noexcept { return vec_; }
  [[nodiscard]] bool live() const noexcept { return live_; }

  /// Steals the storage out of the pool's accounting (it now belongs to the
  /// caller, e.g. as RecvCompletion::data). Zero-copy completion.
  [[nodiscard]] std::vector<std::byte> release() &&;

 private:
  friend class Pool;
  explicit Buffer(std::vector<std::byte> v) noexcept
      : vec_(std::move(v)), live_(true) {}

  std::vector<std::byte> vec_;
  bool live_ = false;
};

/// Process-wide storage pool. Deterministic: pool state never feeds back
/// into simulation decisions, only into host allocation.
// meshmp-lint: shared-state
class Pool {
 public:
  static Pool& instance();

  /// Zero-filled mutable scratch of exactly `bytes` (zero-filled so that
  /// recycled storage can never leak stale bytes into a fresh message).
  [[nodiscard]] Buffer get(std::size_t bytes);

  /// Copy `src` into pooled storage; the caller's modeled copy charge is
  /// the only copy this mirrors. Empty input yields a null slice.
  [[nodiscard]] Slice stage(std::span<const std::byte> src);

  /// Take ownership of `v` with no copy. Empty input yields a null slice.
  [[nodiscard]] Slice adopt(std::vector<std::byte> v);

  /// Buffers plus storage blocks currently out of the pool. Zero at quiesce
  /// when no protocol state leaks references (audited as "buf.pool").
  [[nodiscard]] std::size_t outstanding() const noexcept {
    chk::SimLockGuard g(pool_mu_);
    return outstanding_;
  }

  struct Stats {
    std::uint64_t pool_hits = 0;    ///< storage served from a free list
    std::uint64_t pool_misses = 0;  ///< storage freshly allocated
    std::uint64_t adopts = 0;       ///< vectors adopted without copy
  };
  [[nodiscard]] Stats stats() const noexcept {
    chk::SimLockGuard g(pool_mu_);
    return stats_;
  }

 private:
  friend class Slice;
  friend class Buffer;

  Pool();

  /// Quiesce validator body (named so the analysis sees the acquisition).
  void audit_outstanding() const;

  /// A vector with capacity >= bytes and unspecified size/contents.
  std::vector<std::byte> obtain(std::size_t bytes) MESHMP_REQUIRES(pool_mu_);
  void recycle(std::vector<std::byte> v) noexcept MESHMP_REQUIRES(pool_mu_);
  Slice wrap(std::vector<std::byte> v) MESHMP_REQUIRES(pool_mu_);
  /// Drops the last reference's storage back into the free lists.
  void retire(detail::Ctrl* ctrl) noexcept;
  /// Returns a live Buffer's storage at teardown (locked recycle).
  void give_back(std::vector<std::byte> v) noexcept;
  /// Removes one buffer from the outstanding count without returning its
  /// storage — Buffer::release() steals the bytes.
  void disown_one() noexcept;

  mutable chk::SimLock pool_mu_;
  // Free lists bucketed by capacity class: free_[k] holds vectors whose
  // capacity is in [2^k, 2^(k+1)), so any entry satisfies requests <= 2^k.
  static constexpr std::size_t kClasses = 48;
  static constexpr std::size_t kMaxFreePerClass = 64;
  std::array<std::vector<std::vector<std::byte>>, kClasses> free_
      MESHMP_GUARDED_BY(pool_mu_){};
  std::size_t outstanding_ MESHMP_GUARDED_BY(pool_mu_) = 0;
  Stats stats_ MESHMP_GUARDED_BY(pool_mu_){};
  chk::Audit::Registration audit_reg_;
};

}  // namespace meshmp::buf
