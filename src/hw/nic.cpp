#include "hw/nic.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace meshmp::hw {

Nic::Nic(Cpu& cpu, sim::Resource& bus, NicParams params, net::LinkParams wire,
         sim::Rng rng, std::string name, net::NodeId node)
    : cpu_(cpu),
      bus_(bus),
      params_(params),
      wire_(wire),
      rng_(rng),
      name_(std::move(name)),
      node_(node),
      tx_ring_(cpu.engine()),
      tx_space_(cpu.engine()),
      tx_fifo_(cpu.engine()),
      tx_fifo_slots_(cpu.engine(), 4, name_ + ".txfifo"),
      rx_ring_(cpu.engine()),
      stall_cleared_(cpu.engine()),
      audit_reg_(chk::Audit::instance().watch("hw.nic." + name_,
                                              [this] { audit_quiesce(); })),
      metrics_reg_(obs::Registry::instance().attach("hw.nic", &counters_)),
      rx_batch_hist_(
          obs::Registry::instance().histogram("hw.nic.rx_batch_frames")),
      tx_wire_hist_(
          obs::Registry::instance().histogram("hw.nic.tx_wire_bytes")) {
  dma_task_ = dma_pump();
  wire_task_ = wire_pump();
}

void Nic::audit_quiesce() const {
  auto fail = [this](const std::string& msg) {
    chk::Audit::instance().fail("hw.nic." + name_, msg);
  };
  if (tx_queued_ < 0 || tx_queued_ > params_.tx_descriptors) {
    fail("tx descriptor count " + std::to_string(tx_queued_) +
         " outside [0, " + std::to_string(params_.tx_descriptors) + "]");
  } else if (tx_queued_ != 0) {
    fail(std::to_string(tx_queued_) +
         " tx descriptor(s) still queued at quiesce");
  }
  if (tx_fifo_.size() != 0) {
    fail(std::to_string(tx_fifo_.size()) +
         " frame(s) stranded in the adapter FIFO at quiesce");
  }
  if (!qdisc_.empty()) {
    fail(std::to_string(qdisc_.size()) +
         " frame(s) stranded in the qdisc at quiesce");
  }
  if (rx_queued_ < 0 || rx_queued_ > params_.rx_descriptors) {
    fail("rx descriptor count " + std::to_string(rx_queued_) +
         " outside [0, " + std::to_string(params_.rx_descriptors) + "]");
  } else if (rx_queued_ != 0) {
    fail(std::to_string(rx_queued_) +
         " rx frame(s) undelivered to the driver at quiesce");
  }
}

void Nic::set_carrier(bool up) {
  if (up && !powered_) return;  // no PHY, no link: power clamps the carrier
  if (carrier_ == up) return;
  carrier_ = up;
  counters_.inc(up ? "carrier_up_events" : "carrier_down_events");
  if (driver_ != nullptr) driver_->link_change(*this, up);
}

void Nic::set_stalled(bool stalled) {
  if (stalled_ == stalled) return;
  stalled_ = stalled;
  if (stalled) {
    counters_.inc("stalls");
  } else {
    stall_cleared_.notify_all();
  }
}

void Nic::power_off() {
  if (!powered_) return;
  powered_ = false;
  set_carrier(false);
  // Discard everything queued on the adapter. A frame the DMA pump already
  // popped still owns its descriptor and decrements tx_queued_ itself when
  // its bus hold completes, so only count frames drained from the ring here.
  int drained = 0;
  while (tx_ring_.try_pop()) ++drained;
  tx_queued_ -= drained;
  while (tx_fifo_.try_pop()) tx_fifo_slots_.release();
  qdisc_.clear();
  while (rx_ring_.try_pop()) --rx_queued_;
  // Wake a qdisc pump parked on tx_space so it can observe the empty queue.
  tx_space_.notify_all();
  counters_.inc("power_off_events");
}

void Nic::power_on() {
  if (powered_) return;
  powered_ = true;
  counters_.inc("power_on_events");
}

sim::Duration Nic::wire_time(std::int64_t wire_bytes) const {
  const std::int64_t on_wire = std::max(wire_bytes, wire_.min_frame_bytes) +
                               wire_.per_frame_overhead_bytes;
  return sim::transfer_time(on_wire, wire_.bytes_per_sec);
}

bool Nic::post_tx(net::Frame frame) {
  if (!powered_) {
    // A dead host has no caller left to block: accept and discard so stale
    // coroutines unwinding through the crash never strand on tx_space().
    counters_.inc("powered_off_tx_dropped");
    return true;
  }
  if (tx_queued_ >= params_.tx_descriptors) {
    counters_.inc("tx_ring_full");
    return false;
  }
  ++tx_queued_;
  frame.stamp_checksum();  // hardware checksum offload: free for the host
  tx_ring_.push(std::move(frame));
  return true;
}

void Nic::kernel_enqueue(net::Frame frame) {
  if (!powered_) {
    counters_.inc("powered_off_tx_dropped");
    return;
  }
  if (!qdisc_running_ && tx_queued_ < params_.tx_descriptors) {
    const bool ok = post_tx(std::move(frame));
    assert(ok);
    (void)ok;
    return;
  }
  counters_.inc("qdisc_queued");
  qdisc_.push_back(std::move(frame));
  if (!qdisc_running_) {
    qdisc_running_ = true;
    qdisc_pump().detach();
  }
}

sim::Task<> Nic::qdisc_pump() {
  while (!qdisc_.empty()) {
    while (tx_queued_ >= params_.tx_descriptors) {
      co_await tx_space_.next();
    }
    // power_off() may have discarded the queue while we waited for space.
    if (qdisc_.empty()) break;
    const bool ok = post_tx(std::move(qdisc_.front()));
    assert(ok);
    (void)ok;
    qdisc_.pop_front();
  }
  qdisc_running_ = false;
}

sim::Task<> Nic::dma_pump() {
  for (;;) {
    net::Frame f = co_await tx_ring_.pop();
    MESHMP_TRACE_TRACK(trk_dma_, node_, name_ + ".dma");
    MESHMP_TRACE_SCOPE_ARG(cpu_.engine(), obs::Cat::kNic, node_, trk_dma_,
                           "dma", "wire_bytes", f.wire_bytes);
    co_await tx_fifo_slots_.acquire();
    // Descriptor DMA across the shared PCI-X bus; bus holds are serialized,
    // so concurrent adapters share its bandwidth.
    co_await bus_.consume(
        params_.dma_per_frame +
            sim::transfer_time(f.wire_bytes, params_.dma_bytes_per_sec),
        sim::Resource::kKernelPriority);
    // Descriptor is done as soon as the data reaches the adapter FIFO.
    --tx_queued_;
    if (chk::Audit::enabled() && tx_queued_ < 0) {
      chk::Audit::instance().fail("hw.nic." + name_,
                                  "tx descriptor count went negative");
    }
    tx_space_.notify_all();
    counters_.inc("tx_frames");
    tx_fifo_.push(std::move(f));
  }
}

sim::Task<> Nic::wire_pump() {
  for (;;) {
    net::Frame f = co_await tx_fifo_.pop();
    tx_wire_hist_.add(f.wire_bytes);
    MESHMP_TRACE_TRACK(trk_wire_, node_, name_ + ".wire");
    MESHMP_TRACE_SCOPE_ARG(cpu_.engine(), obs::Cat::kNic, node_, trk_wire_,
                           "serialize", "wire_bytes", f.wire_bytes);
    while (stalled_) co_await stall_cleared_.next();
    co_await sim::delay(cpu_.engine(), wire_time(f.wire_bytes));
    tx_fifo_slots_.release();
    if (tx_severed_) {
      // Gray cable: only the transmit pairs are broken, so the PHY never
      // loses link and the driver is never told — the frame just vanishes.
      counters_.inc("asym_dropped");
      MESHMP_TRACE_INSTANT(cpu_.engine(), obs::Cat::kNic, node_, "asym_drop");
      continue;
    }
    if (!carrier_) {
      // Dead cable: the PHY clocks the frame out into nothing.
      counters_.inc("carrier_dropped");
      MESHMP_TRACE_INSTANT(cpu_.engine(), obs::Cat::kNic, node_,
                           "carrier_drop");
      continue;
    }
    if (wire_.drop_prob > 0 && rng_.bernoulli(wire_.drop_prob)) {
      counters_.inc("wire_dropped");
      MESHMP_TRACE_INSTANT(cpu_.engine(), obs::Cat::kNic, node_, "wire_drop");
      continue;
    }
    if (wire_.corrupt_prob > 0 && !f.payload.empty() &&
        rng_.bernoulli(wire_.corrupt_prob)) {
      f.corrupt_payload_byte(rng_.below(f.payload.size()), std::byte{0x08});
      counters_.inc("wire_corrupted");
    }
    sim::Duration extra = 0;
    if (wire_.reorder_prob > 0 && rng_.bernoulli(wire_.reorder_prob)) {
      // Flaky PHY holds the frame in its elastic buffer: it lands behind
      // younger traffic. The extra delay only ever adds to propagation, so
      // the conservative lookahead (= propagation) stays sound.
      extra = wire_.reorder_delay;
      counters_.inc("wire_reordered");
      MESHMP_TRACE_INSTANT(cpu_.engine(), obs::Cat::kNic, node_,
                           "wire_reorder");
    }
    assert(peer_ && "Nic: no peer attached");
    if (wire_.dup_prob > 0 && rng_.bernoulli(wire_.dup_prob)) {
      // Flaky PHY retransmit: the peer sees the same frame twice and the
      // receive path must dedup it.
      net::Frame dup = f;
      counters_.inc("wire_duplicated");
      MESHMP_TRACE_INSTANT(cpu_.engine(), obs::Cat::kNic, node_, "wire_dup");
      cpu_.engine().schedule_to(
          peer_lp_, wire_.propagation + extra,
          [this, dup = std::move(dup)]() mutable { peer_(std::move(dup)); },
          "wire");
    }
    // Propagation is the cross-LP seam: the peer NIC lives on its own
    // logical process, and the cable delay is the engine's lookahead, so
    // this hop is what makes the conservative window sound.
    cpu_.engine().schedule_to(
        peer_lp_, wire_.propagation + extra,
        [this, f = std::move(f)]() mutable { peer_(std::move(f)); }, "wire");
  }
}

void Nic::receive(net::Frame f) {
  if (!powered_) {
    counters_.inc("powered_off_rx_dropped");
    return;
  }
  if (!carrier_) {
    // No link: whatever was still propagating never trains into the PHY.
    counters_.inc("carrier_rx_dropped");
    return;
  }
  if (params_.hw_checksum && !f.payload.empty() && !f.checksum_ok()) {
    counters_.inc("rx_checksum_drop");
    MESHMP_TRACE_INSTANT(cpu_.engine(), obs::Cat::kNic, node_,
                         "rx_checksum_drop");
    return;
  }
  if (rx_queued_ >= params_.rx_descriptors) {
    counters_.inc("rx_ring_full");
    MESHMP_TRACE_INSTANT(cpu_.engine(), obs::Cat::kNic, node_,
                         "rx_ring_full");
    return;
  }
  ++rx_queued_;
  counters_.inc("rx_frames");
  rx_ring_.push(std::move(f));
  arm_interrupt();
}

void Nic::arm_interrupt() {
  if (irq_armed_ || napi_polling_) return;
  irq_armed_ = true;
  cpu_.engine().schedule(params_.rx_interrupt_delay, [this] {
    isr().detach();
  });
}

sim::Task<> Nic::drain_rx(IsrContext& ctx) {
  // Drain everything in the ring, including frames that arrive while the
  // handler is running (batching under load).
  std::int64_t batch = 0;
  while (auto f = rx_ring_.try_pop()) {
    --rx_queued_;
    ++batch;
    if (driver_ != nullptr) {
      co_await driver_->handle_rx(std::move(*f), ctx);
    }
  }
  rx_batch_hist_.add(batch);
}

sim::Task<> Nic::isr() {
  co_await cpu_.acquire(Cpu::kIrq);
  counters_.inc("interrupts");
  irq_armed_ = false;
  MESHMP_TRACE_TRACK(trk_irq_, node_, name_ + ".irq");
  MESHMP_TRACE_SCOPE(cpu_.engine(), obs::Cat::kNic, node_, trk_irq_, "isr");
  co_await sim::delay(cpu_.engine(), cpu_.host().isr_entry);
  IsrContext ctx(cpu_.engine(), cpu_.host());
  co_await drain_rx(ctx);
  if (params_.napi) {
    // Stay in polling mode: interrupts off, scheduled polls take over
    // (paper sec. 7 / Linux 2.6 NAPI).
    napi_polling_ = true;
    napi_poll().detach();
  }
  cpu_.release();
}

sim::Task<> Nic::napi_poll() {
  for (;;) {
    co_await sim::delay(cpu_.engine(), params_.napi_poll_interval);
    if (rx_queued_ == 0) {
      // Idle poll: re-enable interrupts and leave polling mode.
      napi_polling_ = false;
      co_return;
    }
    co_await cpu_.acquire(Cpu::kIrq);
    counters_.inc("napi_polls");
    {
      MESHMP_TRACE_TRACK(trk_irq_, node_, name_ + ".irq");
      MESHMP_TRACE_SCOPE(cpu_.engine(), obs::Cat::kNic, node_, trk_irq_,
                         "napi_poll");
      IsrContext ctx(cpu_.engine(), cpu_.host());
      co_await drain_rx(ctx);
    }
    cpu_.release();
  }
}

}  // namespace meshmp::hw
