#pragma once

// The per-node CPU: a unit-capacity priority resource plus the host cost
// model. Interrupt work preempts queued user work (priority 0 vs 2), which is
// how a single Xeon ends up the bottleneck when six GigE links are busy.

#include <cstdint>
#include <string>

#include "hw/params.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace meshmp::hw {

class Cpu {
 public:
  static constexpr int kIrq = sim::Resource::kInterruptPriority;
  static constexpr int kKernel = sim::Resource::kKernelPriority;
  static constexpr int kUser = sim::Resource::kUserPriority;

  Cpu(sim::Engine& eng, HostParams params)
      : eng_(eng), params_(params), res_(eng, 1, "cpu") {}
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }
  [[nodiscard]] const HostParams& host() const noexcept { return params_; }
  [[nodiscard]] HostParams& host() noexcept { return params_; }

  /// Occupies the CPU for `dur` at the given priority.
  sim::Task<> busy(sim::Duration dur, int priority = kUser) {
    return res_.consume(dur, priority);
  }

  /// Performs a memory copy of `bytes`; `hot` selects cache-resident vs
  /// cache-cold bandwidth.
  sim::Task<> copy(std::int64_t bytes, bool hot, int priority = kUser) {
    return res_.consume(params_.copy_time(bytes, hot), priority);
  }

  /// Pure compute (no copy): e.g. dslash arithmetic, reduction ops.
  sim::Task<> compute_flops(double flops, int priority = kUser) {
    return res_.consume(
        sim::transfer_time(static_cast<std::int64_t>(flops),
                           params_.flops_per_sec),
        priority);
  }

  /// Raw access for multi-step critical sections.
  auto acquire(int priority = kUser) { return res_.acquire(1, priority); }
  void release() { res_.release(1); }

  [[nodiscard]] sim::Duration busy_time() const { return res_.busy_time(); }
  [[nodiscard]] double utilization() const {
    const auto now = eng_.now();
    return now > 0 ? static_cast<double>(res_.busy_time()) /
                         static_cast<double>(now)
                   : 0.0;
  }

 private:
  sim::Engine& eng_;
  HostParams params_;
  sim::Resource res_;
};

}  // namespace meshmp::hw
