#pragma once

// Gigabit Ethernet adapter model (Intel Pro/1000MT-like).
//
// Transmit: bounded descriptor ring -> DMA stage (shared PCI-X bus) -> small
// on-adapter FIFO -> wire serialization at line rate -> peer rx entry after
// propagation. The two stages overlap, so steady-state throughput is the
// slower of DMA and wire, not their sum.
//
// Receive: bus DMA into a host ring buffer -> interrupt coalescing (the
// driver's "receive interrupt delay") -> ISR runs on the host CPU at
// interrupt priority and hands each frame to the attached protocol driver.
// Hardware checksum verification discards corrupted frames before the host
// ever sees them.

#include <deque>
#include <functional>
#include <string>

#include "chk/audit.hpp"
#include "hw/cpu.hpp"
#include "hw/params.hpp"
#include "net/frame.hpp"
#include "net/link.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace meshmp::hw {

class Nic;

/// Time-accounting context handed to a driver's rx handler. The ISR already
/// holds the CPU at interrupt priority; `spend*` advances time while holding
/// it (never re-acquire the CPU from inside a handler).
class IsrContext {
 public:
  IsrContext(sim::Engine& eng, const HostParams& host)
      : eng_(eng), host_(host) {}

  sim::Task<> spend(sim::Duration d) { co_await sim::delay(eng_, d); }
  sim::Task<> spend_copy(std::int64_t bytes, bool hot) {
    co_await sim::delay(eng_, host_.copy_time(bytes, hot));
  }
  [[nodiscard]] sim::Engine& engine() noexcept { return eng_; }
  [[nodiscard]] const HostParams& host() const noexcept { return host_; }

 private:
  sim::Engine& eng_;
  const HostParams& host_;
};

/// Protocol stack entry point invoked from the receive ISR.
class NicDriver {
 public:
  virtual ~NicDriver() = default;
  /// Processes one received frame while the ISR holds the CPU. Implementations
  /// charge their own time through `ctx` and may post frames to (other) NICs.
  virtual sim::Task<> handle_rx(net::Frame frame, IsrContext& ctx) = 0;
  /// Carrier change notification (the e1000's link status interrupt): the
  /// adapter `nic` saw its link go up or down. Default: ignore.
  virtual void link_change(Nic& nic, bool up) { (void)nic, (void)up; }
};

class Nic {
 public:
  /// `bus` is the node's shared PCI resource (may be shared by several
  /// adapters); `wire` describes the attached cable. `node` is the owning
  /// node's id, used to group trace spans per node.
  Nic(Cpu& cpu, sim::Resource& bus, NicParams params, net::LinkParams wire,
      sim::Rng rng, std::string name, net::NodeId node = 0);
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  /// Connects the far end of the cable (usually the peer NIC's rx_entry()).
  /// `peer_lp` is the logical process owning the peer node; the propagation
  /// hop is the one place frames cross LPs in a partitioned engine, and the
  /// cable delay is exactly the engine's lookahead. Leave it defaulted for
  /// unpartitioned engines (every event is on the control LP anyway).
  void set_peer(std::function<void(net::Frame)> peer,
                sim::LpId peer_lp = sim::kControlLp) {
    peer_ = std::move(peer);
    peer_lp_ = peer_lp;
  }

  /// Receive-side entry, to be handed to the peer as its tx sink.
  std::function<void(net::Frame)> rx_entry() {
    return [this](net::Frame f) { receive(std::move(f)); };
  }

  void set_driver(NicDriver* driver) { driver_ = driver; }

  /// Queues a frame for transmission. Returns false when the tx descriptor
  /// ring is full; callers wait on tx_space() and retry.
  bool post_tx(net::Frame frame);

  /// Kernel-context transmit that never drops: when the descriptor ring is
  /// full the frame waits in an unbounded software queue (the Linux qdisc)
  /// and drains as descriptors free up. Used for acks, retransmissions and
  /// forwarded frames, which an ISR cannot block to send.
  void kernel_enqueue(net::Frame frame);

  /// Fired whenever a tx descriptor frees up.
  [[nodiscard]] sim::Signal& tx_space() noexcept { return tx_space_; }

  /// Carrier (link) state of the attached cable. Dropping the carrier models
  /// a dead/unplugged cable: transmitted frames vanish at the PHY, received
  /// frames are ignored, and the driver gets a link-status notification.
  /// Fault schedules toggle this on both ends of a cable.
  void set_carrier(bool up);
  [[nodiscard]] bool carrier() const noexcept { return carrier_; }

  /// Adapter stall (hung DMA engine / firmware pause): while stalled the
  /// adapter stops moving frames from its FIFO onto the wire; everything
  /// queues behind it and drains when the stall clears.
  void set_stalled(bool stalled);
  [[nodiscard]] bool stalled() const noexcept { return stalled_; }

  /// One-directional (gray) cable break: this adapter's transmit pairs are
  /// severed but the receive pairs still train, so the carrier stays up and
  /// the driver gets NO link-status interrupt — frames silently vanish at
  /// the PHY (counted as "asym_dropped"). The far end keeps transmitting
  /// into a healthy receive path. Fault schedules toggle this on one cable
  /// end only; it composes independently with carrier and power state.
  void set_tx_severed(bool severed) { tx_severed_ = severed; }
  [[nodiscard]] bool tx_severed() const noexcept { return tx_severed_; }

  /// Whole-node power failure: carrier drops, every queued descriptor and
  /// FIFO/qdisc frame is discarded (in-flight DMA data vanishes with the
  /// adapter's SRAM), and new tx/rx is blackholed until power_on(). The pump
  /// coroutines stay parked on their (now empty) queues — an unpowered
  /// adapter simply never hands them work.
  void power_off();
  /// Cold boot after power_off(): rings are empty by construction; carrier
  /// is restored separately by the fabric once the peer port is live.
  void power_on();
  [[nodiscard]] bool powered() const noexcept { return powered_; }

  [[nodiscard]] int tx_free() const noexcept {
    return params_.tx_descriptors - tx_queued_;
  }
  [[nodiscard]] const sim::Counters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const NicParams& params() const noexcept { return params_; }
  [[nodiscard]] net::LinkParams& wire_params() noexcept { return wire_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] net::NodeId node() const noexcept { return node_; }

  /// Wire time for a frame of the given modelled size.
  [[nodiscard]] sim::Duration wire_time(std::int64_t wire_bytes) const;

 private:
  void receive(net::Frame f);
  void arm_interrupt();
  sim::Task<> dma_pump();
  sim::Task<> wire_pump();
  sim::Task<> isr();
  sim::Task<> napi_poll();
  sim::Task<> drain_rx(IsrContext& ctx);
  sim::Task<> qdisc_pump();
  /// Quiesce invariants: rings within bounds and fully drained — no frame
  /// stranded in a descriptor ring, the adapter FIFO, or the qdisc.
  void audit_quiesce() const;

  Cpu& cpu_;
  sim::Resource& bus_;
  NicParams params_;
  net::LinkParams wire_;
  sim::Rng rng_;
  std::string name_;
  net::NodeId node_;

  std::function<void(net::Frame)> peer_;
  sim::LpId peer_lp_ = sim::kControlLp;
  NicDriver* driver_ = nullptr;

  sim::Queue<net::Frame> tx_ring_;
  int tx_queued_ = 0;
  sim::Signal tx_space_;
  // Adapter FIFO between DMA and wire stages: a few frames deep, enough to
  // overlap the stages without modelling the 64 KB FIFO byte-exactly.
  sim::Queue<net::Frame> tx_fifo_;
  sim::Resource tx_fifo_slots_;

  sim::Queue<net::Frame> rx_ring_;
  int rx_queued_ = 0;
  bool irq_armed_ = false;
  bool napi_polling_ = false;

  std::deque<net::Frame> qdisc_;
  bool qdisc_running_ = false;

  bool carrier_ = true;
  bool stalled_ = false;
  bool tx_severed_ = false;
  bool powered_ = true;
  sim::Signal stall_cleared_;

  sim::Counters counters_;
  chk::Audit::Registration audit_reg_;
  obs::Registry::Registration metrics_reg_;
  obs::Histogram& rx_batch_hist_;  ///< frames drained per ISR/NAPI pass
  obs::Histogram& tx_wire_hist_;   ///< modelled wire bytes per tx frame
  // Lazily interned trace tracks (one per pipeline stage; the stages are
  // sequential coroutines, so spans on a track never overlap).
  std::int32_t trk_dma_ = -1;
  std::int32_t trk_wire_ = -1;
  std::int32_t trk_irq_ = -1;

  // The pump coroutines are owned (not detached) so teardown frees their
  // frames; they must be the last members, destroyed before anything they
  // reference.
  sim::Task<> dma_task_;
  sim::Task<> wire_task_;
};

}  // namespace meshmp::hw
