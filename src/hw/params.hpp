#pragma once

// Calibrated hardware model parameters.
//
// Every number here is a named, documented model input; nothing downstream
// hard-codes a latency or bandwidth. Defaults are calibrated so that the
// paper's headline measurements come out of the simulation:
//   * M-VIA half round trip ~18.5 us for small messages (paper fig. 2/4),
//   * ~6 us combined send+receive host overhead (paper sec. 4.1),
//   * ~110 MB/s single-link simultaneous M-VIA send bandwidth,
//   * TCP latency >= 30% above M-VIA, clearly lower simultaneous bandwidth,
//   * 3-D aggregate peaking ~550 MB/s, settling ~400 MB/s (fig. 3),
//   * ~12.5 us per-hop kernel forwarding latency (sec. 5.1).
// The ablation benches sweep the interesting ones.

#include <cstdint>

#include "net/link.hpp"
#include "sim/time.hpp"

namespace meshmp::hw {

using sim::Duration;
using namespace sim::literals;

/// Host (CPU + memory + OS) cost model for one cluster node.
/// Reference machine: single 2.67 GHz Pentium 4 Xeon, RedHat 9, kernel 2.4.
struct HostParams {
  // -- memory copies ---------------------------------------------------
  /// memcpy bandwidth while the working set is cache-resident.
  double copy_bytes_per_sec_hot = 3.0e9;
  /// memcpy bandwidth once the destination falls out of L2 (512 KB on the
  /// reference Xeon): this is what bends the 3-D aggregate curve down at
  /// large message sizes (fig. 3).
  double copy_bytes_per_sec_cold = 1.2e9;
  /// Working-set size above which copies run at the cold rate.
  std::int64_t cache_bytes = 512 * 1024;
  /// Fixed cost per copy call.
  Duration copy_setup = 100_ns;

  // -- interrupts and scheduling ----------------------------------------
  /// Interrupt entry/exit + handler dispatch.
  Duration isr_entry = 1000_ns;
  /// Waking a blocked user process (schedule + context switch).
  Duration wakeup = 1000_ns;
  /// One system call (TCP path only; M-VIA bypasses the kernel on the
  /// critical path).
  Duration syscall = 1200_ns;

  // -- M-VIA path --------------------------------------------------------
  /// User-level descriptor build + doorbell for one send post.
  Duration via_post = 1000_ns;
  /// Kernel driver work per transmitted fragment (segmentation, DMA setup).
  Duration via_tx_per_frame = 400_ns;
  /// ISR work per received fragment (VI lookup, descriptor completion),
  /// excluding the payload copy which is charged by byte.
  Duration via_rx_per_frame = 400_ns;
  /// User-level completion-queue processing per finished descriptor.
  Duration via_completion = 600_ns;
  /// Kernel packet-switch cost per forwarded fragment (route lookup +
  /// re-posting to the egress adapter; no user-space copy).
  Duration via_forward_per_frame = 800_ns;

  // -- TCP path ---------------------------------------------------------
  /// Kernel transmit-side protocol work per segment (skb handling, IP/TCP
  /// header build, route, congestion bookkeeping).
  Duration tcp_tx_per_frame = 3500_ns;
  /// Kernel receive-side protocol work per segment, *including* the poorer
  /// interrupt amortization of the stock e1000 path (pre-NAPI kernel 2.4
  /// receive processing).
  Duration tcp_rx_per_frame = 9000_ns;
  /// Kernel IP forwarding per segment (mesh multi-hop via routing tables).
  Duration tcp_forward_per_frame = 2500_ns;
  /// Software checksum (no offload on the TCP receive path in this era).
  double tcp_csum_bytes_per_sec = 1.5e9;
  /// Data segments per delayed ACK.
  int tcp_ack_every = 2;
  /// Cost to build + send an ACK (receiver) and to absorb one (sender).
  Duration tcp_ack_tx = 1000_ns;
  Duration tcp_ack_rx = 2000_ns;

  /// Sustained floating-point rate for the LQCD compute model (SSE single
  /// precision dslash on the 2.67 GHz Xeon).
  double flops_per_sec = 1.4e9;

  [[nodiscard]] Duration copy_time(std::int64_t bytes, bool hot) const {
    const double rate = hot ? copy_bytes_per_sec_hot : copy_bytes_per_sec_cold;
    return copy_setup + sim::transfer_time(bytes, rate);
  }
};

/// Network adapter model.
struct NicParams {
  /// Descriptor ring sizes; the paper loads the driver with 2048/2048.
  int tx_descriptors = 2048;
  int rx_descriptors = 2048;
  /// DMA engine rate between host memory and adapter FIFO.
  double dma_bytes_per_sec = 800e6;
  /// Fixed per-frame DMA/engine overhead.
  Duration dma_per_frame = 250_ns;
  /// Receive interrupt coalescing delay (Intel "receive interrupt delay").
  /// The dominant term in the 18.5 us small-message latency; ablation bench
  /// `ablation_coalescing` sweeps it.
  Duration rx_interrupt_delay = 12600_ns;
  /// True if the adapter verifies checksums in hardware (Pro/1000MT does;
  /// paper sec. 4: hardware checksum "without degrading performance").
  bool hw_checksum = true;

  /// NAPI-style interrupt mitigation (paper sec. 7 future work: "a possible
  /// new M-VIA feature, similar to the NAPI appeared in Linux kernel 2.6").
  /// After an interrupt fires, the driver stays in polling mode: further
  /// frames are drained by scheduled polls without interrupt entry cost;
  /// when a poll finds the ring empty, interrupts are re-enabled.
  bool napi = false;
  /// Poll cadence while in polling mode.
  Duration napi_poll_interval = 15000_ns;
};

/// Shared I/O bus (PCI-X 133 MHz / 64 bit, ~1066 MB/s) through which every
/// adapter DMA flows. Three dual-port adapters share it, which caps the
/// combined tx+rx byte rate of a node.
struct BusParams {
  double bytes_per_sec = 1066e6;
};

/// Per-node networking hardware cost in dollars (paper sec. 3/6).
struct CostParams {
  double node_base_usd = 1100.0;          // host without networking
  double gige_adapter_usd = 140.0;        // one dual-port Intel Pro/1000MT
  int gige_adapters_per_node = 3;         // -> $420/node, as in the paper
  double myrinet_port_usd = 1000.0;       // LANai9 NIC + switch port share
  [[nodiscard]] double gige_node_usd() const {
    return node_base_usd + gige_adapter_usd * gige_adapters_per_node;
  }
  [[nodiscard]] double myrinet_node_usd() const {
    return node_base_usd + myrinet_port_usd;
  }
};

/// GigE preset: Intel Pro/1000MT on PCI-X, copper cables.
inline net::LinkParams gige_link_params() {
  return net::LinkParams{.bytes_per_sec = 125e6,
                         .propagation = 300_ns,
                         .per_frame_overhead_bytes = 38,
                         .min_frame_bytes = 64,
                         .drop_prob = 0.0,
                         .corrupt_prob = 0.0};
}

/// Myrinet 2000 preset: 2 Gbit/s links, cut-through-ish low overhead.
inline net::LinkParams myrinet_link_params() {
  return net::LinkParams{.bytes_per_sec = 250e6,
                         .propagation = 200_ns,
                         .per_frame_overhead_bytes = 8,
                         .min_frame_bytes = 8,
                         .drop_prob = 0.0,
                         .corrupt_prob = 0.0};
}

/// Host model for the Myrinet cluster nodes (2.0 GHz Xeon, GM user-level
/// firmware: no kernel, no interrupts on the critical path).
struct MyrinetParams {
  Duration host_post = 600_ns;      ///< GM send post
  Duration host_completion = 500_ns;  ///< polled completion
  Duration nic_per_frame = 700_ns;  ///< LANai firmware per-packet time
  Duration switch_latency = 500_ns;
  std::int64_t mtu_payload = 4096;  ///< GM allows large frames
  double flops_per_sec = 1.05e9;    ///< 2.0 GHz vs 2.67 GHz reference node
};

}  // namespace meshmp::hw
