#pragma once

// One cluster node's hardware: a CPU, a shared PCI-X bus, and its network
// adapters. The cluster builder wires adapters of neighbouring nodes together.

#include <memory>
#include <string>
#include <vector>

#include "hw/cpu.hpp"
#include "hw/nic.hpp"
#include "hw/params.hpp"
#include "sim/rng.hpp"

namespace meshmp::hw {

class NodeHw {
 public:
  NodeHw(sim::Engine& eng, net::NodeId id, HostParams host, BusParams bus)
      : id_(id),
        cpu_(eng, host),
        // The bus is modelled as a serializing channel: one DMA at a time at
        // full bus rate, so concurrent adapters share its bandwidth.
        bus_(eng, 1, "bus"),
        bus_params_(bus) {}

  NodeHw(const NodeHw&) = delete;
  NodeHw& operator=(const NodeHw&) = delete;

  Nic& add_nic(NicParams params, net::LinkParams wire, sim::Rng rng,
               const std::string& name) {
    // Scale the adapter's DMA rate down to what the shared bus can grant;
    // the serialization through bus_ then shares it between adapters.
    params.dma_bytes_per_sec =
        std::min(params.dma_bytes_per_sec, bus_params_.bytes_per_sec);
    nics_.push_back(
        std::make_unique<Nic>(cpu_, bus_, params, wire, rng, name, id_));
    return *nics_.back();
  }

  [[nodiscard]] net::NodeId id() const noexcept { return id_; }
  [[nodiscard]] Cpu& cpu() noexcept { return cpu_; }
  [[nodiscard]] sim::Resource& bus() noexcept { return bus_; }
  [[nodiscard]] std::vector<std::unique_ptr<Nic>>& nics() noexcept {
    return nics_;
  }
  [[nodiscard]] Nic& nic(std::size_t i) { return *nics_.at(i); }

 private:
  net::NodeId id_;
  Cpu cpu_;
  sim::Resource bus_;
  BusParams bus_params_;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace meshmp::hw
