#pragma once

// Deterministic fault-injection campaign engine.
//
// A Schedule is a sim-time-scripted list of fault events — link carrier flaps,
// loss/corruption bursts, NIC stalls — built with fluent helpers. An Injector
// binds a schedule to a GigE mesh cluster and arms every event on the
// simulation clock before the workload starts. Because events fire at fixed
// simulated times (no wall-clock, no extra randomness), a faulted run is just
// as reproducible as a clean one and composes with the run-twice determinism
// checker: rebuild the scenario, replay the same schedule, compare digests.

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "chk/flat_map.hpp"
#include "cluster/gige_mesh.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "topo/torus.hpp"

namespace meshmp::flt {

/// One scripted fault event. Link events act on the full-duplex cable at
/// (node, dir) — the injector applies them to both cable ends, like pulling a
/// physical cable. Burst events scale one NIC's transmit-side wire
/// parameters for a window, restoring the pre-burst value at the end.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kLinkDown,
    kLinkUp,
    kLossStart,
    kLossStop,
    kCorruptStart,
    kCorruptStop,
    kStallStart,
    kStallStop,
    kNodeCrash,    ///< whole-node power failure; dir unused
    kNodeRestart,  ///< cold start of a previously crashed node; dir unused
    kPartition,    ///< cut every link of a PartitionSpec; node/dir unused
    kHeal,         ///< restore every link cut by prior partitions
    // Gray failures: the link stays "up" as far as carrier sense goes but
    // misbehaves — degraded, one-directional, or flaky.
    kDegradeStart,  ///< added latency / bandwidth fraction, both directions
    kDegradeStop,
    kAsymStart,  ///< (node, dir) tx pairs severed; carrier stays up
    kAsymStop,
    kFlakyStart,  ///< probabilistic per-frame drop/duplicate/reorder
    kFlakyStop,
  };
  Kind kind = Kind::kLinkDown;
  sim::Time at = 0;
  topo::Rank node = 0;
  topo::Dir dir{};
  double prob = 0;    ///< loss/corrupt/flaky-drop probability during a burst
  std::int32_t spec = -1;  ///< kPartition: index into Schedule::partitions()
  // Gray-failure parameters (kDegradeStart / kFlakyStart only).
  double dup_prob = 0;      ///< kFlakyStart: per-frame duplicate probability
  double reorder_prob = 0;  ///< kFlakyStart: per-frame reorder probability
  sim::Duration add_latency = 0;  ///< kDegradeStart: extra propagation (>= 0)
  double bw_fraction = 1.0;       ///< kDegradeStart: line-rate multiplier
};

/// The deterministic link set a kPartition event cuts: either a full
/// bisection plane of the torus (every cable crossing coordinate `cut` along
/// `dim`, wraparound plane included, so the machine genuinely splits in
/// two), or an arbitrary explicit cable list.
struct PartitionSpec {
  enum class Kind : std::uint8_t { kPlane, kLinks };
  Kind kind = Kind::kPlane;
  int dim = 0;  ///< kPlane: dimension to bisect
  int cut = 0;  ///< kPlane: low side is coord[dim] < cut
  std::vector<std::pair<topo::Rank, topo::Dir>> links;  ///< kLinks
};

/// Fault schedule builder. All times are absolute simulated times.
class Schedule {
 public:
  Schedule& link_down(sim::Time at, topo::Rank node, topo::Dir dir) {
    return add({FaultEvent::Kind::kLinkDown, at, node, dir, 0});
  }
  Schedule& link_up(sim::Time at, topo::Rank node, topo::Dir dir) {
    return add({FaultEvent::Kind::kLinkUp, at, node, dir, 0});
  }
  /// Carrier drop at `at`, restore after `down_for` (a link flap).
  Schedule& link_flap(sim::Time at, topo::Rank node, topo::Dir dir,
                      sim::Duration down_for) {
    link_down(at, node, dir);
    return link_up(at + down_for, node, dir);
  }
  /// Random frame loss at probability `prob` on (node, dir) transmit during
  /// [at, at+dur).
  Schedule& loss_burst(sim::Time at, sim::Duration dur, topo::Rank node,
                       topo::Dir dir, double prob) {
    add({FaultEvent::Kind::kLossStart, at, node, dir, prob});
    return add({FaultEvent::Kind::kLossStop, at + dur, node, dir, 0});
  }
  /// Payload corruption (caught by the receive-side CRC) during [at, at+dur).
  Schedule& corrupt_burst(sim::Time at, sim::Duration dur, topo::Rank node,
                          topo::Dir dir, double prob) {
    add({FaultEvent::Kind::kCorruptStart, at, node, dir, prob});
    return add({FaultEvent::Kind::kCorruptStop, at + dur, node, dir, 0});
  }
  /// Adapter stall (hung DMA/firmware): frames queue behind the stalled NIC
  /// during [at, at+dur) and drain when it clears.
  Schedule& nic_stall(sim::Time at, sim::Duration dur, topo::Rank node,
                      topo::Dir dir) {
    add({FaultEvent::Kind::kStallStart, at, node, dir, 0});
    return add({FaultEvent::Kind::kStallStop, at + dur, node, dir, 0});
  }
  /// Whole-node power failure at `at`: every adapter powers off (in-flight
  /// DMA and rings discarded, carrier drops at both cable ends) and the
  /// kernel agent fails all its connections.
  Schedule& node_crash(sim::Time at, topo::Rank node) {
    return add({FaultEvent::Kind::kNodeCrash, at, node, {}, 0});
  }
  /// Cold start of a previously crashed node at `at`: the agent's incarnation
  /// epoch bumps, adapters power on, carrier returns at both cable ends.
  Schedule& node_restart(sim::Time at, topo::Rank node) {
    return add({FaultEvent::Kind::kNodeRestart, at, node, {}, 0});
  }
  /// Crash at `at`, cold-start after `down_for`.
  Schedule& crash_restart(sim::Time at, topo::Rank node,
                          sim::Duration down_for) {
    node_crash(at, node);
    return node_restart(at + down_for, node);
  }
  /// Cuts the full bisection plane of dimension `dim` at coordinate `cut`
  /// (wraparound plane included) at `at`, splitting the torus in two.
  Schedule& partition_plane(sim::Time at, int dim, int cut) {
    return add_partition(at, PartitionSpec{PartitionSpec::Kind::kPlane, dim,
                                           cut, {}});
  }
  /// Cuts an explicit cable set at `at` (each cable named once from either
  /// end).
  Schedule& partition_links(sim::Time at,
                            std::vector<std::pair<topo::Rank, topo::Dir>> ls) {
    return add_partition(
        at, PartitionSpec{PartitionSpec::Kind::kLinks, 0, 0, std::move(ls)});
  }
  /// Restores every cable cut by the partitions still open at `at`. Must
  /// come strictly after the partitions it heals.
  Schedule& heal(sim::Time at) {
    return add({FaultEvent::Kind::kHeal, at, 0, {}, 0, -1});
  }
  /// Plane partition at `at`, healed after `down_for`.
  Schedule& partition_window(sim::Time at, int dim, int cut,
                             sim::Duration down_for) {
    partition_plane(at, dim, cut);
    return heal(at + down_for);
  }
  /// Gray link degradation (failing cable / renegotiated PHY): both
  /// directions of the (node, dir) cable gain `add_latency` propagation and
  /// run at `bw_fraction` of line rate during [at, at+dur). Carrier never
  /// drops — only the phi detector and link-quality scores can see this.
  Schedule& link_degrade(sim::Time at, sim::Duration dur, topo::Rank node,
                         topo::Dir dir, sim::Duration add_latency,
                         double bw_fraction) {
    FaultEvent ev{FaultEvent::Kind::kDegradeStart, at, node, dir, 0};
    ev.add_latency = add_latency;
    ev.bw_fraction = bw_fraction;
    add(ev);
    return add({FaultEvent::Kind::kDegradeStop, at + dur, node, dir, 0});
  }
  /// One-directional cable break during [at, at+dur): (node, dir)'s transmit
  /// pairs die but its receive pairs — and the carrier at both ends — stay
  /// up, so neither driver gets a link-status interrupt.
  Schedule& link_asymmetric(sim::Time at, sim::Duration dur, topo::Rank node,
                            topo::Dir dir) {
    add({FaultEvent::Kind::kAsymStart, at, node, dir, 0});
    return add({FaultEvent::Kind::kAsymStop, at + dur, node, dir, 0});
  }
  /// Flaky NIC burst: per-frame drop / duplicate / reorder probabilities on
  /// (node, dir) transmit during [at, at+dur). All randomness comes from the
  /// NIC's deterministic per-port PRNG.
  Schedule& nic_flaky(sim::Time at, sim::Duration dur, topo::Rank node,
                      topo::Dir dir, double drop, double dup, double reorder) {
    FaultEvent ev{FaultEvent::Kind::kFlakyStart, at, node, dir, drop};
    ev.dup_prob = dup;
    ev.reorder_prob = reorder;
    add(ev);
    return add({FaultEvent::Kind::kFlakyStop, at + dur, node, dir, 0});
  }

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const std::vector<PartitionSpec>& partitions() const noexcept {
    return partitions_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

 private:
  Schedule& add(FaultEvent ev) {
    events_.push_back(ev);
    return *this;
  }
  Schedule& add_partition(sim::Time at, PartitionSpec spec) {
    const auto id = static_cast<std::int32_t>(partitions_.size());
    partitions_.push_back(std::move(spec));
    return add({FaultEvent::Kind::kPartition, at, 0, {}, 0, id});
  }
  std::vector<FaultEvent> events_;
  std::vector<PartitionSpec> partitions_;
};

/// Arms a Schedule on a cluster's simulation clock. Construct after the
/// cluster and before run(); the injector must outlive the run.
class Injector {
 public:
  Injector(cluster::GigeMeshCluster& cluster, Schedule schedule);
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  [[nodiscard]] const sim::Counters& counters() const noexcept {
    return counters_;
  }

 private:
  /// Arm-time schedule validation: ranks and links must exist, events must
  /// not be in the past, burst/stall windows on a port must open before they
  /// close and never nest, node crash/restart sequences must alternate (a
  /// restart needs a prior crash, a crashed node can't crash again), and
  /// every heal must close at least one partition opened strictly earlier.
  /// Throws std::invalid_argument naming the offending event (index,
  /// sim-time, kind, target).
  void validate() const;
  void apply(const FaultEvent& ev);
  /// Sets carrier on both ends of the (node, dir) cable.
  void set_cable_carrier(topo::Rank node, topo::Dir dir, bool up);

  static std::uint64_t port_key(topo::Rank node, topo::Dir dir) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node))
            << 8) |
           static_cast<std::uint64_t>(static_cast<unsigned>(dir.index()));
  }

  cluster::GigeMeshCluster& cluster_;
  Schedule schedule_;
  // Pre-burst wire parameters, restored when the window closes. Flat maps:
  // fault state must never introduce hash-order nondeterminism.
  chk::FlatMap<std::uint64_t, double> saved_drop_;
  chk::FlatMap<std::uint64_t, double> saved_corrupt_;
  // Pre-degrade (bytes_per_sec, propagation) per port and pre-flaky
  // (drop, dup, reorder) probabilities per port.
  chk::FlatMap<std::uint64_t, std::pair<double, sim::Duration>> saved_wire_;
  chk::FlatMap<std::uint64_t, std::array<double, 3>> saved_flaky_;
  // Per-PartitionSpec cable lists, expanded once against the cluster torus
  // at arm time so kPartition/kHeal apply a fixed, validated set.
  std::vector<std::vector<std::pair<topo::Rank, topo::Dir>>> partition_links_;
  // Cables currently cut by partitions, restored (and cleared) by kHeal.
  std::vector<std::pair<topo::Rank, topo::Dir>> cut_links_;
  sim::Counters counters_;
  // Gray-failure window counters, exported as flt.gray.* (zero — and thus
  // absent from snapshots — unless a schedule actually arms gray faults).
  sim::Counters gray_counters_;
  obs::Registry::Registration gray_reg_;
};

}  // namespace meshmp::flt
