#include "flt/fault.hpp"

#include <stdexcept>

namespace meshmp::flt {

Injector::Injector(cluster::GigeMeshCluster& cluster, Schedule schedule)
    : cluster_(cluster), schedule_(std::move(schedule)) {
  auto& eng = cluster_.engine();
  for (const FaultEvent& ev : schedule_.events()) {
    if (ev.at < eng.now()) {
      throw std::invalid_argument("flt::Injector: event in the past");
    }
    if (!cluster_.torus().neighbor(ev.node, ev.dir)) {
      throw std::invalid_argument("flt::Injector: no link at (node, dir)");
    }
    eng.schedule_at(ev.at, [this, ev] { apply(ev); }, "fault");
  }
}

void Injector::set_cable_carrier(topo::Rank node, topo::Dir dir, bool up) {
  // A cable has an adapter on each end; pulling it takes both down, exactly
  // like yanking copper out of two NICs at once.
  cluster_.nic(node, dir).set_carrier(up);
  const auto peer = cluster_.torus().neighbor(node, dir);
  cluster_.nic(*peer, dir.opposite()).set_carrier(up);
}

void Injector::apply(const FaultEvent& ev) {
  hw::Nic& nic = cluster_.nic(ev.node, ev.dir);
  const std::uint64_t key = port_key(ev.node, ev.dir);
  switch (ev.kind) {
    case FaultEvent::Kind::kLinkDown:
      set_cable_carrier(ev.node, ev.dir, false);
      counters_.inc("link_down");
      break;
    case FaultEvent::Kind::kLinkUp:
      set_cable_carrier(ev.node, ev.dir, true);
      counters_.inc("link_up");
      break;
    case FaultEvent::Kind::kLossStart:
      saved_drop_.emplace(key, nic.wire_params().drop_prob);
      nic.wire_params().drop_prob = ev.prob;
      counters_.inc("loss_bursts");
      break;
    case FaultEvent::Kind::kLossStop: {
      auto it = saved_drop_.find(key);
      nic.wire_params().drop_prob = it != saved_drop_.end() ? it->second : 0;
      if (it != saved_drop_.end()) saved_drop_.erase(it);
      break;
    }
    case FaultEvent::Kind::kCorruptStart:
      saved_corrupt_.emplace(key, nic.wire_params().corrupt_prob);
      nic.wire_params().corrupt_prob = ev.prob;
      counters_.inc("corrupt_bursts");
      break;
    case FaultEvent::Kind::kCorruptStop: {
      auto it = saved_corrupt_.find(key);
      nic.wire_params().corrupt_prob =
          it != saved_corrupt_.end() ? it->second : 0;
      if (it != saved_corrupt_.end()) saved_corrupt_.erase(it);
      break;
    }
    case FaultEvent::Kind::kStallStart:
      nic.set_stalled(true);
      counters_.inc("stalls");
      break;
    case FaultEvent::Kind::kStallStop:
      nic.set_stalled(false);
      break;
  }
}

}  // namespace meshmp::flt
