#include "flt/fault.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <string>

namespace meshmp::flt {

namespace {

bool is_node_event(FaultEvent::Kind k) {
  return k == FaultEvent::Kind::kNodeCrash ||
         k == FaultEvent::Kind::kNodeRestart;
}

bool is_machine_event(FaultEvent::Kind k) {
  return k == FaultEvent::Kind::kPartition || k == FaultEvent::Kind::kHeal;
}

const char* kind_name(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kLinkDown:
      return "link_down";
    case FaultEvent::Kind::kLinkUp:
      return "link_up";
    case FaultEvent::Kind::kLossStart:
      return "loss_start";
    case FaultEvent::Kind::kLossStop:
      return "loss_stop";
    case FaultEvent::Kind::kCorruptStart:
      return "corrupt_start";
    case FaultEvent::Kind::kCorruptStop:
      return "corrupt_stop";
    case FaultEvent::Kind::kStallStart:
      return "stall_start";
    case FaultEvent::Kind::kStallStop:
      return "stall_stop";
    case FaultEvent::Kind::kNodeCrash:
      return "node_crash";
    case FaultEvent::Kind::kNodeRestart:
      return "node_restart";
    case FaultEvent::Kind::kPartition:
      return "partition";
    case FaultEvent::Kind::kHeal:
      return "heal";
    case FaultEvent::Kind::kDegradeStart:
      return "degrade_start";
    case FaultEvent::Kind::kDegradeStop:
      return "degrade_stop";
    case FaultEvent::Kind::kAsymStart:
      return "asym_start";
    case FaultEvent::Kind::kAsymStop:
      return "asym_stop";
    case FaultEvent::Kind::kFlakyStart:
      return "flaky_start";
    case FaultEvent::Kind::kFlakyStop:
      return "flaky_stop";
  }
  return "?";
}

bool valid_prob(double p) { return p >= 0 && p <= 1; }

/// What the event acts on, for error messages: a node, a (node, dir) port,
/// a partition spec, or (for heal) whatever partitions are open.
void fmt_target(char* out, std::size_t n, const FaultEvent& ev,
                const PartitionSpec* spec) {
  switch (ev.kind) {
    case FaultEvent::Kind::kNodeCrash:
    case FaultEvent::Kind::kNodeRestart:
      std::snprintf(out, n, "node %d", static_cast<int>(ev.node));
      return;
    case FaultEvent::Kind::kPartition:
      if (spec != nullptr && spec->kind == PartitionSpec::Kind::kPlane) {
        std::snprintf(out, n, "plane dim=%d cut=%d", spec->dim, spec->cut);
      } else {
        std::snprintf(out, n, "%zu explicit links",
                      spec != nullptr ? spec->links.size() : std::size_t{0});
      }
      return;
    case FaultEvent::Kind::kHeal:
      std::snprintf(out, n, "all open partitions");
      return;
    default:
      std::snprintf(out, n, "node %d dir %c%d", static_cast<int>(ev.node),
                    ev.dir.sign > 0 ? '+' : '-', static_cast<int>(ev.dir.dim));
      return;
  }
}

[[noreturn]] void reject(std::size_t index, const FaultEvent& ev,
                         const PartitionSpec* spec, const char* why) {
  char target[64];
  fmt_target(target, sizeof target, ev, spec);
  char buf[224];
  std::snprintf(buf, sizeof buf, "flt::Schedule: event #%zu (%s at t=%lld, %s): %s",
                index, kind_name(ev.kind), static_cast<long long>(ev.at),
                target, why);
  throw std::invalid_argument(buf);
}

}  // namespace

Injector::Injector(cluster::GigeMeshCluster& cluster, Schedule schedule)
    : cluster_(cluster),
      schedule_(std::move(schedule)),
      gray_reg_(obs::Registry::instance().attach("flt.gray",
                                                 &gray_counters_)) {
  validate();
  // Expand every partition spec into its concrete cable list once, against
  // the validated torus, so apply() cuts a fixed deterministic set.
  partition_links_.reserve(schedule_.partitions().size());
  for (const PartitionSpec& sp : schedule_.partitions()) {
    if (sp.kind == PartitionSpec::Kind::kPlane) {
      partition_links_.push_back(
          cluster_.torus().bisection_links(sp.dim, sp.cut));
    } else {
      partition_links_.push_back(sp.links);
    }
  }
  auto& eng = cluster_.engine();
  for (const FaultEvent& ev : schedule_.events()) {
    eng.schedule_at(ev.at, [this, ev] { apply(ev); }, "fault");
  }
}

void Injector::validate() const {
  const topo::Torus& t = cluster_.torus();
  const sim::Time now = cluster_.engine().now();
  const std::vector<FaultEvent>& evs = schedule_.events();

  for (std::size_t i = 0; i < evs.size(); ++i) {
    const FaultEvent& ev = evs[i];
    const PartitionSpec* sp =
        ev.kind == FaultEvent::Kind::kPartition
            ? &schedule_.partitions().at(static_cast<std::size_t>(ev.spec))
            : nullptr;
    if (ev.node < 0 || ev.node >= t.size()) {
      reject(i, ev, sp, "rank out of range");
    }
    if (ev.at < now) {
      reject(i, ev, sp, "event is in the past");
    }
    if (!is_node_event(ev.kind) && !is_machine_event(ev.kind) &&
        !t.neighbor(ev.node, ev.dir)) {
      reject(i, ev, sp, "no link at (node, dir)");
    }
    if (sp != nullptr) {
      if (sp->kind == PartitionSpec::Kind::kPlane) {
        if (sp->dim < 0 || sp->dim >= t.ndims()) {
          reject(i, ev, sp, "plane dimension out of range");
        }
        if (sp->cut <= 0 || sp->cut >= t.shape()[sp->dim]) {
          reject(i, ev, sp, "plane cut must leave both sides non-empty");
        }
      } else {
        if (sp->links.empty()) {
          reject(i, ev, sp, "explicit link set is empty");
        }
        for (const auto& [node, dir] : sp->links) {
          if (node < 0 || node >= t.size()) {
            reject(i, ev, sp, "link endpoint rank out of range");
          }
          if (!t.neighbor(node, dir)) {
            reject(i, ev, sp, "no link at (node, dir)");
          }
        }
      }
    }
  }

  // Window / lifecycle ordering is checked in time order; ties keep
  // insertion order so a zero-length window is caught as inverted.
  std::vector<std::size_t> order(evs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return evs[a].at < evs[b].at;
  });

  // Open-window times per (port, fault class); -1 means closed.
  chk::FlatMap<std::uint64_t, sim::Time> open;
  chk::FlatMap<topo::Rank, sim::Time> down_since;
  const auto wkey = [](const FaultEvent& ev, std::uint64_t cls) {
    return (cls << 48) | port_key(ev.node, ev.dir);
  };
  const auto open_window = [&](std::size_t i, const FaultEvent& ev,
                               std::uint64_t cls) {
    auto [it, fresh] = open.emplace(wkey(ev, cls), ev.at);
    if (!fresh && it->second >= 0) reject(i, ev, nullptr, "window opened twice");
    it->second = ev.at;
  };
  const auto close_window = [&](std::size_t i, const FaultEvent& ev,
                                std::uint64_t cls) {
    auto it = open.find(wkey(ev, cls));
    if (it == open.end() || it->second < 0) {
      reject(i, ev, nullptr, "stop without an open window");
    }
    if (ev.at <= it->second) reject(i, ev, nullptr, "window is empty or inverted");
    it->second = -1;
  };

  // Partition/heal alternate machine-wide: a heal needs at least one open
  // partition and must fire strictly after the latest one it closes.
  sim::Time last_partition_at = -1;
  int open_partitions = 0;

  for (std::size_t i : order) {
    const FaultEvent& ev = evs[i];
    switch (ev.kind) {
      case FaultEvent::Kind::kLossStart:
        open_window(i, ev, 1);
        break;
      case FaultEvent::Kind::kLossStop:
        close_window(i, ev, 1);
        break;
      case FaultEvent::Kind::kCorruptStart:
        open_window(i, ev, 2);
        break;
      case FaultEvent::Kind::kCorruptStop:
        close_window(i, ev, 2);
        break;
      case FaultEvent::Kind::kStallStart:
        open_window(i, ev, 3);
        break;
      case FaultEvent::Kind::kStallStop:
        close_window(i, ev, 3);
        break;
      case FaultEvent::Kind::kDegradeStart:
        if (ev.bw_fraction <= 0 || ev.bw_fraction > 1) {
          reject(i, ev, nullptr, "bandwidth fraction must be in (0, 1]");
        }
        if (ev.add_latency < 0) {
          reject(i, ev, nullptr, "added latency must be >= 0");
        }
        if (ev.add_latency == 0 && ev.bw_fraction == 1) {
          reject(i, ev, nullptr, "degrade window with no effect");
        }
        open_window(i, ev, 4);
        break;
      case FaultEvent::Kind::kDegradeStop:
        close_window(i, ev, 4);
        break;
      case FaultEvent::Kind::kAsymStart:
        open_window(i, ev, 5);
        break;
      case FaultEvent::Kind::kAsymStop:
        close_window(i, ev, 5);
        break;
      case FaultEvent::Kind::kFlakyStart:
        if (!valid_prob(ev.prob) || !valid_prob(ev.dup_prob) ||
            !valid_prob(ev.reorder_prob)) {
          reject(i, ev, nullptr, "flaky probabilities must be in [0, 1]");
        }
        if (ev.prob == 0 && ev.dup_prob == 0 && ev.reorder_prob == 0) {
          reject(i, ev, nullptr, "flaky window with no effect");
        }
        open_window(i, ev, 6);
        break;
      case FaultEvent::Kind::kFlakyStop:
        close_window(i, ev, 6);
        break;
      case FaultEvent::Kind::kNodeCrash: {
        auto [it, fresh] = down_since.emplace(ev.node, ev.at);
        if (!fresh && it->second >= 0) {
          reject(i, ev, nullptr, "node is already crashed");
        }
        it->second = ev.at;
        break;
      }
      case FaultEvent::Kind::kNodeRestart: {
        auto it = down_since.find(ev.node);
        if (it == down_since.end() || it->second < 0) {
          reject(i, ev, nullptr, "restart without a prior crash");
        }
        if (ev.at <= it->second) {
          reject(i, ev, nullptr, "restart not after the crash");
        }
        it->second = -1;
        break;
      }
      case FaultEvent::Kind::kPartition:
        ++open_partitions;
        if (ev.at > last_partition_at) last_partition_at = ev.at;
        break;
      case FaultEvent::Kind::kHeal:
        if (open_partitions == 0) {
          reject(i, ev, nullptr, "heal without an open partition");
        }
        if (ev.at <= last_partition_at) {
          reject(i, ev, nullptr, "heal not after the partition");
        }
        open_partitions = 0;
        last_partition_at = -1;
        break;
      case FaultEvent::Kind::kLinkDown:
      case FaultEvent::Kind::kLinkUp:
        break;  // carrier writes are idempotent; any order is meaningful
    }
  }
}

void Injector::set_cable_carrier(topo::Rank node, topo::Dir dir, bool up) {
  // A cable has an adapter on each end; pulling it takes both down, exactly
  // like yanking copper out of two NICs at once.
  cluster_.nic(node, dir).set_carrier(up);
  const auto peer = cluster_.torus().neighbor(node, dir);
  cluster_.nic(*peer, dir.opposite()).set_carrier(up);
}

void Injector::apply(const FaultEvent& ev) {
  if (ev.kind == FaultEvent::Kind::kNodeCrash) {
    cluster_.power_fail_node(ev.node);
    counters_.inc("node_crashes");
    return;
  }
  if (ev.kind == FaultEvent::Kind::kNodeRestart) {
    cluster_.power_restore_node(ev.node);
    counters_.inc("node_restarts");
    return;
  }
  if (ev.kind == FaultEvent::Kind::kPartition) {
    for (const auto& [node, dir] :
         partition_links_[static_cast<std::size_t>(ev.spec)]) {
      set_cable_carrier(node, dir, false);
      cut_links_.emplace_back(node, dir);
    }
    counters_.inc("partitions");
    return;
  }
  if (ev.kind == FaultEvent::Kind::kHeal) {
    for (const auto& [node, dir] : cut_links_) {
      set_cable_carrier(node, dir, true);
    }
    cut_links_.clear();
    counters_.inc("heals");
    return;
  }
  hw::Nic& nic = cluster_.nic(ev.node, ev.dir);
  const std::uint64_t key = port_key(ev.node, ev.dir);
  switch (ev.kind) {
    case FaultEvent::Kind::kLinkDown:
      set_cable_carrier(ev.node, ev.dir, false);
      counters_.inc("link_down");
      break;
    case FaultEvent::Kind::kLinkUp:
      set_cable_carrier(ev.node, ev.dir, true);
      counters_.inc("link_up");
      break;
    case FaultEvent::Kind::kLossStart:
      saved_drop_.emplace(key, nic.wire_params().drop_prob);
      nic.wire_params().drop_prob = ev.prob;
      counters_.inc("loss_bursts");
      break;
    case FaultEvent::Kind::kLossStop: {
      auto it = saved_drop_.find(key);
      nic.wire_params().drop_prob = it != saved_drop_.end() ? it->second : 0;
      if (it != saved_drop_.end()) saved_drop_.erase(it);
      break;
    }
    case FaultEvent::Kind::kCorruptStart:
      saved_corrupt_.emplace(key, nic.wire_params().corrupt_prob);
      nic.wire_params().corrupt_prob = ev.prob;
      counters_.inc("corrupt_bursts");
      break;
    case FaultEvent::Kind::kCorruptStop: {
      auto it = saved_corrupt_.find(key);
      nic.wire_params().corrupt_prob =
          it != saved_corrupt_.end() ? it->second : 0;
      if (it != saved_corrupt_.end()) saved_corrupt_.erase(it);
      break;
    }
    case FaultEvent::Kind::kStallStart:
      nic.set_stalled(true);
      counters_.inc("stalls");
      break;
    case FaultEvent::Kind::kStallStop:
      nic.set_stalled(false);
      break;
    case FaultEvent::Kind::kDegradeStart: {
      // A failing cable degrades both directions; apply to the tx params of
      // the adapters on both ends. Propagation only ever *increases* here,
      // which keeps the cross-LP lookahead (= nominal propagation) sound.
      const auto degrade_port = [&](topo::Rank node, topo::Dir dir) {
        net::LinkParams& w = cluster_.nic(node, dir).wire_params();
        saved_wire_.emplace(port_key(node, dir),
                            std::make_pair(w.bytes_per_sec, w.propagation));
        w.bytes_per_sec *= ev.bw_fraction;
        w.propagation += ev.add_latency;
      };
      const auto peer = cluster_.torus().neighbor(ev.node, ev.dir);
      degrade_port(ev.node, ev.dir);
      degrade_port(*peer, ev.dir.opposite());
      counters_.inc("degrades");
      gray_counters_.inc("degrade_windows");
      break;
    }
    case FaultEvent::Kind::kDegradeStop: {
      const auto restore_port = [&](topo::Rank node, topo::Dir dir) {
        auto it = saved_wire_.find(port_key(node, dir));
        if (it == saved_wire_.end()) return;
        net::LinkParams& w = cluster_.nic(node, dir).wire_params();
        w.bytes_per_sec = it->second.first;
        w.propagation = it->second.second;
        saved_wire_.erase(it);
      };
      const auto peer = cluster_.torus().neighbor(ev.node, ev.dir);
      restore_port(ev.node, ev.dir);
      restore_port(*peer, ev.dir.opposite());
      break;
    }
    case FaultEvent::Kind::kAsymStart:
      nic.set_tx_severed(true);
      counters_.inc("asym_severs");
      gray_counters_.inc("asym_windows");
      break;
    case FaultEvent::Kind::kAsymStop:
      nic.set_tx_severed(false);
      break;
    case FaultEvent::Kind::kFlakyStart: {
      net::LinkParams& w = nic.wire_params();
      saved_flaky_.emplace(
          key, std::array<double, 3>{w.drop_prob, w.dup_prob, w.reorder_prob});
      w.drop_prob = ev.prob;
      w.dup_prob = ev.dup_prob;
      w.reorder_prob = ev.reorder_prob;
      counters_.inc("flaky_bursts");
      gray_counters_.inc("flaky_windows");
      break;
    }
    case FaultEvent::Kind::kFlakyStop: {
      auto it = saved_flaky_.find(key);
      net::LinkParams& w = nic.wire_params();
      w.drop_prob = it != saved_flaky_.end() ? it->second[0] : 0;
      w.dup_prob = it != saved_flaky_.end() ? it->second[1] : 0;
      w.reorder_prob = it != saved_flaky_.end() ? it->second[2] : 0;
      if (it != saved_flaky_.end()) saved_flaky_.erase(it);
      break;
    }
    case FaultEvent::Kind::kNodeCrash:
    case FaultEvent::Kind::kNodeRestart:
    case FaultEvent::Kind::kPartition:
    case FaultEvent::Kind::kHeal:
      break;  // handled above, before the port lookup
  }
}

}  // namespace meshmp::flt
