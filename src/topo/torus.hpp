#pragma once

// Mesh/torus geometry: rank<->coordinate maps, neighbours, torus-aware
// distances, and the Shortest-Direction-First (SDF) next-hop rule used by the
// modified M-VIA's kernel packet switching (paper section 4, 5.1).

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "topo/coords.hpp"

namespace meshmp::topo {

/// Node index; row-major over coordinates, dimension 0 fastest.
using Rank = std::int32_t;

/// Bitmask over Dir::index() values, naming a node's failed (or otherwise
/// unusable) local links for failure-aware routing.
using DirMask = std::uint32_t;

inline DirMask dir_bit(Dir d) noexcept {
  return DirMask{1} << static_cast<unsigned>(d.index());
}

class Torus {
 public:
  /// `shape` gives the extent per dimension; `wrap` enables the wraparound
  /// links (the paper's clusters always have them; plain meshes do not).
  explicit Torus(Coord shape, bool wrap = true);

  [[nodiscard]] int ndims() const noexcept { return shape_.ndims(); }
  [[nodiscard]] const Coord& shape() const noexcept { return shape_; }
  [[nodiscard]] bool wraps() const noexcept { return wrap_; }
  [[nodiscard]] Rank size() const noexcept { return size_; }
  /// Number of links per node (ports): 2 per dimension, except dimensions of
  /// extent 1 (no links) and extent 2 without duplicate links.
  [[nodiscard]] int ports() const noexcept;

  [[nodiscard]] Rank rank(const Coord& c) const;
  [[nodiscard]] Coord coord(Rank r) const;

  /// Neighbour one step along `dir`, or nullopt at a non-wrapping edge or
  /// along a dimension of extent 1.
  [[nodiscard]] std::optional<Coord> neighbor(const Coord& c, Dir dir) const;
  [[nodiscard]] std::optional<Rank> neighbor(Rank r, Dir dir) const;

  /// Signed minimal displacement from `from` to `to` along `dim`; with
  /// wraparound this lies in [-extent/2, +extent/2].
  [[nodiscard]] int delta(const Coord& from, const Coord& to, int dim) const;

  /// Minimal hop count between two nodes.
  [[nodiscard]] int distance(const Coord& from, const Coord& to) const;
  [[nodiscard]] int distance(Rank from, Rank to) const;

  /// Shortest-Direction-First next hop: among dimensions still needing
  /// movement, picks the one with the fewest remaining steps (ties go to the
  /// lowest dimension). Returns nullopt when from == to.
  [[nodiscard]] std::optional<Dir> sdf_next(const Coord& from,
                                            const Coord& to) const;

  /// All first-hop directions that start a minimal route from->to.
  [[nodiscard]] std::vector<Dir> minimal_first_hops(const Coord& from,
                                                    const Coord& to) const;

  /// Failure-aware SDF: the SDF rule restricted to minimal first hops whose
  /// direction is not in `avoid`. A torus has several minimal paths, so one
  /// failed link usually leaves a same-length alternative; the wraparound
  /// half-way tie adds an alternative within the same dimension too.
  /// Returns nullopt when from == to or when no minimal direction survives.
  [[nodiscard]] std::optional<Dir> sdf_next_avoiding(const Coord& from,
                                                     const Coord& to,
                                                     DirMask avoid) const;

  /// Detour first hop when no minimal direction survives: a usable direction
  /// that starts a +2-hop route (a step along an undisplaced dimension, or as
  /// a last resort the long way around a displaced one). Deterministic —
  /// lowest dimension, positive sign first. nullopt when every port is down.
  [[nodiscard]] std::optional<Dir> detour_next(const Coord& from,
                                               const Coord& to,
                                               DirMask avoid) const;

  /// Full SDF route (sequence of directions) from->to.
  [[nodiscard]] std::vector<Dir> route(const Coord& from,
                                       const Coord& to) const;

  /// Dimension-order route whose first hop is forced to `first`; the rest is
  /// the SDF route from the first intermediate node. Used by the OPT scatter
  /// to keep each message inside its region. `first` must be a minimal first
  /// hop.
  [[nodiscard]] std::vector<Dir> route_via(const Coord& from, const Coord& to,
                                           Dir first) const;

  /// All valid directions at a node (its ports).
  [[nodiscard]] std::vector<Dir> directions(const Coord& c) const;

  /// Full route recomputation for degraded mode: BFS over the subgraph of
  /// live nodes (`dead[r]` marks rank r unusable as hop or destination),
  /// returning the first-hop direction index (Dir::index()) from `src`
  /// toward every rank, or -1 for src itself, dead ranks, and destinations
  /// the failures disconnect. Deterministic: ranks are expanded in BFS
  /// order and directions in lowest-dimension, positive-sign-first order,
  /// so every survivor computes the same table for the same dead set.
  [[nodiscard]] std::vector<std::int8_t> route_table_avoiding(
      Rank src, const std::vector<bool>& dead) const;

  /// Quality-aware variant: `degraded[r]` is a DirMask naming rank r's
  /// degraded egress links. Among the shortest live routes (hop count
  /// exactly as in the 2-argument overload) it picks, per destination, a
  /// first hop on a path crossing the fewest degraded links — proactive
  /// avoidance of sick links that never lengthens a route. Deterministic:
  /// lexicographic (hops, degraded-crossings, discovery order) relaxation
  /// with strict-improvement updates; with an all-zero (or empty) mask it
  /// returns exactly the 2-argument table.
  [[nodiscard]] std::vector<std::int8_t> route_table_avoiding(
      Rank src, const std::vector<bool>& dead,
      const std::vector<DirMask>& degraded) const;

  /// All cables crossing the bisection of dimension `dim` at coordinate
  /// `cut`: the low side is every node with coord[dim] < cut, and a cable is
  /// listed once as (low-side rank, direction toward the high side). On a
  /// wrapped torus this includes the wraparound plane (the -dim links out of
  /// coord 0), so cutting the returned set genuinely disconnects the two
  /// sides. Requires 0 < cut < extent(dim); deterministic rank order.
  [[nodiscard]] std::vector<std::pair<Rank, Dir>> bisection_links(
      int dim, int cut) const;

 private:
  Coord shape_;
  bool wrap_;
  Rank size_;
};

}  // namespace meshmp::topo
