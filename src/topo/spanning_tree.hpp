#pragma once

// The dimension-ordered broadcast spanning tree of a mesh/torus (paper
// sec. 5.2): data flows along the x axis first, then across the xy plane,
// then through all yz planes. Pure geometry — used by the user-level
// collectives (coll/) and by the interrupt-level collectives prototype
// (via/, paper sec. 7).

#include <optional>
#include <vector>

#include "topo/torus.hpp"

namespace meshmp::topo {

/// A node's parent: one hop toward the root along its *highest* displaced
/// dimension (nullopt for the root itself).
std::optional<Rank> bcast_parent(const Torus& t, Rank root, Rank me);

/// All nodes whose bcast_parent is `me` — always mesh neighbours of `me`.
std::vector<Rank> bcast_children(const Torus& t, Rank root, Rank me);

/// Degraded-mode spanning tree: BFS over the subgraph of live nodes
/// (`dead[r]` marks rank r excluded), rooted at `root`. Deterministic (ranks
/// expand in BFS order, directions lowest-dim positive-sign first), so every
/// survivor derives the same tree from the same dead set. `root` must be
/// alive.
///
/// Parent of `me` in the tree; nullopt for the root and for nodes the
/// failures disconnect from it.
std::optional<Rank> survivor_parent(const Torus& t, Rank root, Rank me,
                                    const std::vector<bool>& dead);

/// All live nodes whose survivor_parent is `me`, ascending by rank — always
/// mesh neighbours of `me`.
std::vector<Rank> survivor_children(const Torus& t, Rank root, Rank me,
                                    const std::vector<bool>& dead);

}  // namespace meshmp::topo
