#pragma once

// Switched (star/Clos) topology descriptor used for the Myrinet comparison
// cluster (paper section 6): every node has one port into a full-bisection
// non-blocking switch, so any pair can communicate at full port rate.

#include <cstdint>

#include "topo/torus.hpp"

namespace meshmp::topo {

struct SwitchedTopology {
  Rank nodes = 0;

  [[nodiscard]] Rank size() const noexcept { return nodes; }
  /// Every node reaches every other node through the switch in one "hop".
  [[nodiscard]] int distance(Rank a, Rank b) const noexcept {
    return a == b ? 0 : 1;
  }
};

}  // namespace meshmp::topo
