#include "topo/torus.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <queue>
#include <stdexcept>
#include <tuple>

namespace meshmp::topo {

Torus::Torus(Coord shape, bool wrap) : shape_(shape), wrap_(wrap) {
  if (shape.ndims() < 1 || shape.ndims() > kMaxDims) {
    throw std::invalid_argument("Torus: 1..4 dimensions supported");
  }
  std::int64_t n = 1;
  for (int d = 0; d < shape.ndims(); ++d) {
    if (shape[d] < 1) throw std::invalid_argument("Torus: extent must be >= 1");
    n *= shape[d];
  }
  size_ = static_cast<Rank>(n);
}

int Torus::ports() const noexcept {
  int p = 0;
  for (int d = 0; d < ndims(); ++d) {
    if (shape_[d] > 1) p += 2;
  }
  return p;
}

Rank Torus::rank(const Coord& c) const {
  assert(c.ndims() == ndims());
  Rank r = 0;
  for (int d = ndims() - 1; d >= 0; --d) {
    assert(c[d] >= 0 && c[d] < shape_[d]);
    r = r * shape_[d] + c[d];
  }
  return r;
}

Coord Torus::coord(Rank r) const {
  assert(r >= 0 && r < size_);
  Coord c = Coord::zeros(ndims());
  for (int d = 0; d < ndims(); ++d) {
    c[d] = static_cast<int>(r % shape_[d]);
    r /= shape_[d];
  }
  return c;
}

std::optional<Coord> Torus::neighbor(const Coord& c, Dir dir) const {
  assert(dir.dim >= 0 && dir.dim < ndims());
  const int extent = shape_[dir.dim];
  if (extent <= 1) return std::nullopt;
  Coord n = c;
  int x = c[dir.dim] + dir.sign;
  if (x < 0 || x >= extent) {
    if (!wrap_) return std::nullopt;
    x = (x + extent) % extent;
  }
  n[dir.dim] = x;
  return n;
}

std::optional<Rank> Torus::neighbor(Rank r, Dir dir) const {
  auto n = neighbor(coord(r), dir);
  if (!n) return std::nullopt;
  return rank(*n);
}

int Torus::delta(const Coord& from, const Coord& to, int dim) const {
  const int extent = shape_[dim];
  int d = to[dim] - from[dim];
  if (wrap_ && extent > 1) {
    // Reduce into the minimal signed displacement; on an exact half-way tie
    // (both ways around the ring are minimal) prefer the positive direction.
    d %= extent;
    if (d > extent / 2) d -= extent;
    if (d < -(extent / 2)) d += extent;
    if (2 * std::abs(d) == extent && d < 0) d = -d;
  }
  return d;
}

int Torus::distance(const Coord& from, const Coord& to) const {
  int dist = 0;
  for (int d = 0; d < ndims(); ++d) dist += std::abs(delta(from, to, d));
  return dist;
}

int Torus::distance(Rank from, Rank to) const {
  return distance(coord(from), coord(to));
}

std::optional<Dir> Torus::sdf_next(const Coord& from, const Coord& to) const {
  int best_dim = -1;
  int best_steps = 0;
  for (int d = 0; d < ndims(); ++d) {
    const int steps = std::abs(delta(from, to, d));
    if (steps == 0) continue;
    if (best_dim < 0 || steps < best_steps) {
      best_dim = d;
      best_steps = steps;
    }
  }
  if (best_dim < 0) return std::nullopt;
  const int sign = delta(from, to, best_dim) > 0 ? +1 : -1;
  return Dir{static_cast<std::int8_t>(best_dim),
             static_cast<std::int8_t>(sign)};
}

std::optional<Dir> Torus::sdf_next_avoiding(const Coord& from, const Coord& to,
                                            DirMask avoid) const {
  int best_dim = -1;
  int best_steps = 0;
  Dir best{};
  for (int d = 0; d < ndims(); ++d) {
    const int dd = delta(from, to, d);
    const int steps = std::abs(dd);
    if (steps == 0) continue;
    // Preferred sign first; with a wraparound half-way tie the other way
    // around the ring is an equal-length fallback in the same dimension.
    Dir cand{static_cast<std::int8_t>(d),
             static_cast<std::int8_t>(dd > 0 ? +1 : -1)};
    if (avoid & dir_bit(cand)) {
      if (!(wrap_ && 2 * steps == shape_[d])) continue;
      cand = cand.opposite();
      if (avoid & dir_bit(cand)) continue;
    }
    if (best_dim < 0 || steps < best_steps) {
      best_dim = d;
      best_steps = steps;
      best = cand;
    }
  }
  if (best_dim < 0) return std::nullopt;
  return best;
}

std::optional<Dir> Torus::detour_next(const Coord& from, const Coord& to,
                                      DirMask avoid) const {
  // First choice: step along a dimension that needs no movement — the
  // detour rejoins a minimal route after exactly two extra hops.
  for (int d = 0; d < ndims(); ++d) {
    if (delta(from, to, d) != 0) continue;
    for (int sign : {+1, -1}) {
      const Dir dir{static_cast<std::int8_t>(d),
                    static_cast<std::int8_t>(sign)};
      if (avoid & dir_bit(dir)) continue;
      if (neighbor(from, dir)) return dir;
    }
  }
  // Last resort: the long way around a displaced dimension.
  for (int d = 0; d < ndims(); ++d) {
    const int dd = delta(from, to, d);
    if (dd == 0) continue;
    const Dir dir{static_cast<std::int8_t>(d),
                  static_cast<std::int8_t>(dd > 0 ? -1 : +1)};
    if (avoid & dir_bit(dir)) continue;
    if (neighbor(from, dir)) return dir;
  }
  return std::nullopt;
}

std::vector<Dir> Torus::minimal_first_hops(const Coord& from,
                                           const Coord& to) const {
  std::vector<Dir> dirs;
  for (int d = 0; d < ndims(); ++d) {
    const int extent = shape_[d];
    const int dd = delta(from, to, d);
    if (dd == 0) continue;
    dirs.push_back(Dir{static_cast<std::int8_t>(d),
                       static_cast<std::int8_t>(dd > 0 ? +1 : -1)});
    // With wraparound, a displacement of exactly extent/2 is minimal both
    // ways around the ring.
    if (wrap_ && 2 * std::abs(dd) == extent) {
      dirs.push_back(Dir{static_cast<std::int8_t>(d),
                         static_cast<std::int8_t>(dd > 0 ? -1 : +1)});
    }
  }
  return dirs;
}

std::vector<Dir> Torus::route(const Coord& from, const Coord& to) const {
  std::vector<Dir> hops;
  Coord cur = from;
  while (cur != to) {
    auto dir = sdf_next(cur, to);
    assert(dir);
    hops.push_back(*dir);
    auto n = neighbor(cur, *dir);
    assert(n);
    cur = *n;
  }
  return hops;
}

std::vector<Dir> Torus::route_via(const Coord& from, const Coord& to,
                                  Dir first) const {
  assert(from != to);
  std::vector<Dir> hops{first};
  auto n = neighbor(from, first);
  assert(n && "route_via: first hop leaves the mesh");
  auto rest = route(*n, to);
  hops.insert(hops.end(), rest.begin(), rest.end());
  return hops;
}

std::vector<std::int8_t> Torus::route_table_avoiding(
    Rank src, const std::vector<bool>& dead) const {
  assert(static_cast<Rank>(dead.size()) == size_);
  std::vector<std::int8_t> first(static_cast<std::size_t>(size_), -1);
  std::vector<bool> seen(static_cast<std::size_t>(size_), false);
  seen[static_cast<std::size_t>(src)] = true;
  std::vector<Rank> queue;
  queue.reserve(static_cast<std::size_t>(size_));
  for (Dir d : directions(coord(src))) {
    auto n = neighbor(src, d);
    if (!n || seen[static_cast<std::size_t>(*n)] ||
        dead[static_cast<std::size_t>(*n)]) {
      continue;
    }
    seen[static_cast<std::size_t>(*n)] = true;
    first[static_cast<std::size_t>(*n)] = static_cast<std::int8_t>(d.index());
    queue.push_back(*n);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Rank cur = queue[head];
    for (Dir d : directions(coord(cur))) {
      auto n = neighbor(cur, d);
      if (!n || seen[static_cast<std::size_t>(*n)] ||
          dead[static_cast<std::size_t>(*n)]) {
        continue;
      }
      seen[static_cast<std::size_t>(*n)] = true;
      // The first hop toward a node is the first hop toward whichever live
      // node discovered it.
      first[static_cast<std::size_t>(*n)] =
          first[static_cast<std::size_t>(cur)];
      queue.push_back(*n);
    }
  }
  return first;
}

std::vector<std::int8_t> Torus::route_table_avoiding(
    Rank src, const std::vector<bool>& dead,
    const std::vector<DirMask>& degraded) const {
  const bool any_degraded =
      std::any_of(degraded.begin(), degraded.end(),
                  [](DirMask m) { return m != 0; });
  if (!any_degraded) return route_table_avoiding(src, dead);
  assert(static_cast<Rank>(dead.size()) == size_);
  assert(static_cast<Rank>(degraded.size()) == size_);

  // Lexicographic shortest path on (hops, degraded links crossed): every
  // destination keeps its minimal hop count, and among equal-hop paths the
  // one using the fewest degraded egresses wins. The tie-break is discovery
  // order (a monotone insertion sequence), which reduces to plain BFS FIFO
  // order when no costs differ, so the table is deterministic.
  constexpr int kInf = 1 << 20;
  std::vector<int> hops(static_cast<std::size_t>(size_), kInf);
  std::vector<int> degs(static_cast<std::size_t>(size_), kInf);
  std::vector<std::int8_t> first(static_cast<std::size_t>(size_), -1);
  using Item = std::tuple<int, int, std::uint32_t, Rank>;  // hops, deg, seq
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  std::uint32_t seq = 0;
  hops[static_cast<std::size_t>(src)] = 0;
  degs[static_cast<std::size_t>(src)] = 0;
  pq.emplace(0, 0, seq++, src);
  while (!pq.empty()) {
    const auto [h, g, s, cur] = pq.top();
    pq.pop();
    if (h != hops[static_cast<std::size_t>(cur)] ||
        g != degs[static_cast<std::size_t>(cur)]) {
      continue;  // stale queue entry, a better path already settled
    }
    for (Dir d : directions(coord(cur))) {
      auto n = neighbor(cur, d);
      if (!n || dead[static_cast<std::size_t>(*n)]) continue;
      const int nh = h + 1;
      const int ng =
          g + ((degraded[static_cast<std::size_t>(cur)] & dir_bit(d)) ? 1 : 0);
      auto& bh = hops[static_cast<std::size_t>(*n)];
      auto& bg = degs[static_cast<std::size_t>(*n)];
      if (nh > bh || (nh == bh && ng >= bg)) continue;  // strict improvement
      bh = nh;
      bg = ng;
      first[static_cast<std::size_t>(*n)] =
          cur == src ? static_cast<std::int8_t>(d.index())
                     : first[static_cast<std::size_t>(cur)];
      pq.emplace(nh, ng, seq++, *n);
    }
  }
  first[static_cast<std::size_t>(src)] = -1;
  return first;
}

std::vector<std::pair<Rank, Dir>> Torus::bisection_links(int dim,
                                                         int cut) const {
  if (dim < 0 || dim >= ndims()) {
    throw std::invalid_argument("Torus::bisection_links: dimension not in [0, ndims)");
  }
  if (cut <= 0 || cut >= shape_[dim]) {
    throw std::invalid_argument("Torus::bisection_links: cut must leave both sides non-empty");
  }
  std::vector<std::pair<Rank, Dir>> links;
  for (Rank r = 0; r < size_; ++r) {
    const Coord c = coord(r);
    if (c[dim] >= cut) continue;  // low side only; each cable has one low end
    for (const int sign : {+1, -1}) {
      const Dir d{static_cast<std::int8_t>(dim), static_cast<std::int8_t>(sign)};
      const auto n = neighbor(c, d);
      if (!n) continue;
      if ((*n)[dim] >= cut) links.emplace_back(r, d);
    }
  }
  return links;
}

std::vector<Dir> Torus::directions(const Coord& c) const {
  std::vector<Dir> dirs;
  for (int d = 0; d < ndims(); ++d) {
    for (int sign : {+1, -1}) {
      Dir dir{static_cast<std::int8_t>(d), static_cast<std::int8_t>(sign)};
      if (neighbor(c, dir)) dirs.push_back(dir);
    }
  }
  return dirs;
}

}  // namespace meshmp::topo
