#include "topo/spanning_tree.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>

namespace meshmp::topo {

namespace {

/// Reachable steps from the root along +d / -d with wraparound rings split
/// as +floor(ext/2), -floor((ext-1)/2); without wraparound the split follows
/// the plain signed displacement.
int range_in_dir(const Torus& t, int dim, int sign) {
  const int ext = t.shape()[dim];
  if (!t.wraps()) return ext - 1;  // bounded by the mesh edge anyway
  return sign > 0 ? ext / 2 : (ext - 1) / 2;
}

}  // namespace

std::optional<Rank> bcast_parent(const Torus& t, Rank root, Rank me) {
  if (me == root) return std::nullopt;
  const Coord rc = t.coord(root);
  const Coord mc = t.coord(me);
  int h = -1;
  for (int d = 0; d < t.ndims(); ++d) {
    if (t.delta(rc, mc, d) != 0) h = d;
  }
  assert(h >= 0);
  const int dd = t.delta(rc, mc, h);
  // One step back toward the root along the highest displaced dimension.
  const Dir back{static_cast<std::int8_t>(h),
                 static_cast<std::int8_t>(dd > 0 ? -1 : +1)};
  auto p = t.neighbor(mc, back);
  assert(p);
  return t.rank(*p);
}

std::vector<Rank> bcast_children(const Torus& t, Rank root, Rank me) {
  const Coord rc = t.coord(root);
  const Coord mc = t.coord(me);
  // Highest displaced dimension of *me* relative to the root.
  int h = -1;
  for (int d = 0; d < t.ndims(); ++d) {
    if (t.delta(rc, mc, d) != 0) h = d;
  }
  std::vector<Rank> kids;
  for (int d = (h < 0 ? 0 : h); d < t.ndims(); ++d) {
    for (int sign : {+1, -1}) {
      if (d == h) {
        // Continue the flow away from the root along my own direction.
        const int dd = t.delta(rc, mc, d);
        if ((dd > 0) != (sign > 0)) continue;
        if (std::abs(dd) + 1 > range_in_dir(t, d, sign)) continue;
      } else {
        // Initiate the next dimension (both directions, range permitting).
        if (range_in_dir(t, d, sign) < 1) continue;
      }
      const Dir dir{static_cast<std::int8_t>(d),
                    static_cast<std::int8_t>(sign)};
      auto n = t.neighbor(mc, dir);
      if (!n) continue;
      kids.push_back(t.rank(*n));
    }
  }
  return kids;
}

}  // namespace meshmp::topo
