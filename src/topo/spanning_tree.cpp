#include "topo/spanning_tree.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>

namespace meshmp::topo {

namespace {

/// Reachable steps from the root along +d / -d with wraparound rings split
/// as +floor(ext/2), -floor((ext-1)/2); without wraparound the split follows
/// the plain signed displacement.
int range_in_dir(const Torus& t, int dim, int sign) {
  const int ext = t.shape()[dim];
  if (!t.wraps()) return ext - 1;  // bounded by the mesh edge anyway
  return sign > 0 ? ext / 2 : (ext - 1) / 2;
}

}  // namespace

std::optional<Rank> bcast_parent(const Torus& t, Rank root, Rank me) {
  if (me == root) return std::nullopt;
  const Coord rc = t.coord(root);
  const Coord mc = t.coord(me);
  int h = -1;
  for (int d = 0; d < t.ndims(); ++d) {
    if (t.delta(rc, mc, d) != 0) h = d;
  }
  assert(h >= 0);
  const int dd = t.delta(rc, mc, h);
  // One step back toward the root along the highest displaced dimension.
  const Dir back{static_cast<std::int8_t>(h),
                 static_cast<std::int8_t>(dd > 0 ? -1 : +1)};
  auto p = t.neighbor(mc, back);
  assert(p);
  return t.rank(*p);
}

std::vector<Rank> bcast_children(const Torus& t, Rank root, Rank me) {
  const Coord rc = t.coord(root);
  const Coord mc = t.coord(me);
  // Highest displaced dimension of *me* relative to the root.
  int h = -1;
  for (int d = 0; d < t.ndims(); ++d) {
    if (t.delta(rc, mc, d) != 0) h = d;
  }
  std::vector<Rank> kids;
  for (int d = (h < 0 ? 0 : h); d < t.ndims(); ++d) {
    for (int sign : {+1, -1}) {
      if (d == h) {
        // Continue the flow away from the root along my own direction.
        const int dd = t.delta(rc, mc, d);
        if ((dd > 0) != (sign > 0)) continue;
        if (std::abs(dd) + 1 > range_in_dir(t, d, sign)) continue;
      } else {
        // Initiate the next dimension (both directions, range permitting).
        if (range_in_dir(t, d, sign) < 1) continue;
      }
      const Dir dir{static_cast<std::int8_t>(d),
                    static_cast<std::int8_t>(sign)};
      auto n = t.neighbor(mc, dir);
      if (!n) continue;
      kids.push_back(t.rank(*n));
    }
  }
  return kids;
}

namespace {

/// BFS parent array over the live subgraph, rooted at `root` (-1 = root or
/// unreached). Shared by survivor_parent / survivor_children.
std::vector<Rank> survivor_parents(const Torus& t, Rank root,
                                   const std::vector<bool>& dead) {
  assert(static_cast<Rank>(dead.size()) == t.size());
  assert(!dead[static_cast<std::size_t>(root)] &&
         "survivor tree rooted at a dead node");
  std::vector<Rank> parent(static_cast<std::size_t>(t.size()), -1);
  std::vector<bool> seen(static_cast<std::size_t>(t.size()), false);
  seen[static_cast<std::size_t>(root)] = true;
  std::vector<Rank> queue{root};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Rank cur = queue[head];
    for (Dir d : t.directions(t.coord(cur))) {
      auto n = t.neighbor(cur, d);
      if (!n || seen[static_cast<std::size_t>(*n)] ||
          dead[static_cast<std::size_t>(*n)]) {
        continue;
      }
      seen[static_cast<std::size_t>(*n)] = true;
      parent[static_cast<std::size_t>(*n)] = cur;
      queue.push_back(*n);
    }
  }
  return parent;
}

}  // namespace

std::optional<Rank> survivor_parent(const Torus& t, Rank root, Rank me,
                                    const std::vector<bool>& dead) {
  if (me == root) return std::nullopt;
  const Rank p = survivor_parents(t, root, dead)[static_cast<std::size_t>(me)];
  if (p < 0) return std::nullopt;
  return p;
}

std::vector<Rank> survivor_children(const Torus& t, Rank root, Rank me,
                                    const std::vector<bool>& dead) {
  const auto parent = survivor_parents(t, root, dead);
  std::vector<Rank> kids;
  for (Rank r = 0; r < t.size(); ++r) {
    if (r != root && parent[static_cast<std::size_t>(r)] == me) {
      kids.push_back(r);
    }
  }
  return kids;
}

}  // namespace meshmp::topo
