#include "topo/partition.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace meshmp::topo {

RegionPartition make_region_partition(const Torus& torus, Rank root) {
  const Coord root_c = torus.coord(root);
  const auto dirs = torus.directions(root_c);
  if (dirs.empty()) {
    throw std::invalid_argument("make_region_partition: root has no links");
  }

  RegionPartition part;
  part.region_dir = dirs;
  part.region_of.assign(static_cast<std::size_t>(torus.size()), -1);
  part.members.resize(dirs.size());

  auto region_index = [&](Dir d) {
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      if (dirs[i] == d) return static_cast<int>(i);
    }
    return -1;
  };

  // Collect candidate regions (minimal first hops) per node.
  struct Entry {
    Rank rank;
    int distance;
    std::vector<int> candidates;
  };
  std::vector<Entry> entries;
  entries.reserve(static_cast<std::size_t>(torus.size()) - 1);
  for (Rank r = 0; r < torus.size(); ++r) {
    if (r == root) continue;
    const Coord c = torus.coord(r);
    Entry e{r, torus.distance(root_c, c), {}};
    for (Dir d : torus.minimal_first_hops(root_c, c)) {
      const int idx = region_index(d);
      assert(idx >= 0);
      e.candidates.push_back(idx);
    }
    assert(!e.candidates.empty());
    entries.push_back(std::move(e));
  }

  // Most-constrained-first, then nearest-first so far-away nodes (which tend
  // to have many candidate directions) fill whatever is left, balancing the
  // regions. Ties break on rank for determinism.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.candidates.size() != b.candidates.size()) {
      return a.candidates.size() < b.candidates.size();
    }
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.rank < b.rank;
  });

  std::vector<std::size_t> load(dirs.size(), 0);
  for (const Entry& e : entries) {
    int best = e.candidates.front();
    for (int cand : e.candidates) {
      if (load[static_cast<std::size_t>(cand)] <
          load[static_cast<std::size_t>(best)]) {
        best = cand;
      }
    }
    part.region_of[static_cast<std::size_t>(e.rank)] = best;
    part.members[static_cast<std::size_t>(best)].push_back(e.rank);
    ++load[static_cast<std::size_t>(best)];
  }

  // Furthest-Distance-First within each region (paper: the message with the
  // furthest distance to travel leaves first).
  for (auto& region : part.members) {
    std::sort(region.begin(), region.end(), [&](Rank a, Rank b) {
      const int da = torus.distance(root, a);
      const int db = torus.distance(root, b);
      if (da != db) return da > db;
      return a < b;
    });
  }
  return part;
}

}  // namespace meshmp::topo
