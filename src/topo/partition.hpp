#pragma once

// Root-link region partition for the OPT one-to-all personalized
// communication algorithm (paper section 5.2).
//
// The mesh is split into k regions, one per link leaving the root, such that
// every node in region i is reachable from the root *through link i* in the
// minimal number of steps. Region sizes are balanced so the root, which must
// emit all p-1 messages, drains in ceil((p-1)/k) steps.

#include <vector>

#include "topo/torus.hpp"

namespace meshmp::topo {

struct RegionPartition {
  /// The direction (root link) owning each region, indexed by region id.
  std::vector<Dir> region_dir;
  /// region id for every rank; -1 for the root itself.
  std::vector<int> region_of;
  /// Ranks per region, each sorted by descending distance from the root
  /// (Furthest-Distance-First order).
  std::vector<std::vector<Rank>> members;

  [[nodiscard]] int num_regions() const {
    return static_cast<int>(region_dir.size());
  }
};

/// Builds the OPT partition around `root`. Every non-root node is assigned to
/// exactly one region whose first hop starts a minimal route to it; a greedy
/// most-constrained-first pass keeps the regions balanced.
RegionPartition make_region_partition(const Torus& torus, Rank root);

}  // namespace meshmp::topo
