#include "topo/route_cache.hpp"

#include "chk/digest.hpp"

namespace meshmp::topo {

std::uint64_t RouteTableCache::key(Rank src, const std::vector<bool>& dead,
                                   const std::vector<DirMask>& degraded) {
  // Digest the dead set bit-by-bit (vector<bool> has no contiguous bytes to
  // hash), then the degraded egress masks (the score epoch: any avoidance
  // change must produce a new key), then fold in the source rank so
  // per-node tables never alias.
  std::uint64_t h = chk::kFnvOffset;
  std::uint64_t word = 0;
  std::size_t nbits = 0;
  for (std::size_t r = 0; r < dead.size(); ++r) {
    if (dead[r]) word |= std::uint64_t{1} << (r % 64);
    if (++nbits == 64 || r + 1 == dead.size()) {
      h = chk::fnv1a_u64(h, word);
      word = 0;
      nbits = 0;
    }
  }
  for (const DirMask m : degraded) {
    h = chk::fnv1a_u64(h, static_cast<std::uint64_t>(m));
  }
  return chk::fnv1a_u64(h, static_cast<std::uint64_t>(src));
}

std::vector<std::int8_t> RouteTableCache::get(
    const Torus& torus, Rank src, const std::vector<bool>& dead,
    const std::vector<DirMask>& degraded) {
  const std::uint64_t k = key(src, dead, degraded);
  chk::SimLockGuard g(mu_);
  auto [it, fresh] = entries_.emplace(k, Entry{});
  if (!fresh && it->second.dead == dead && it->second.degraded == degraded) {
    ++hits_;
    return it->second.table;
  }
  // Miss, or a digest collision (different avoidance set behind the same
  // key): recompute and overwrite so correctness never rests on the digest.
  ++misses_;
  it->second.dead = dead;
  it->second.degraded = degraded;
  it->second.table = torus.route_table_avoiding(src, dead, degraded);
  return it->second.table;
}

}  // namespace meshmp::topo
