#pragma once

// N-dimensional coordinates and link directions for mesh/torus topologies.
//
// The paper's clusters are 2-D (8x8) and 3-D (4x8x8, 6x8x8) tori; the LQCD
// application lives on a 4-D logical lattice, so everything here supports up
// to four dimensions.

#include <array>
#include <cassert>
#include <cstdint>
#include <string>

namespace meshmp::topo {

inline constexpr int kMaxDims = 4;

/// A point in (or the extent of) an up-to-4-dimensional grid.
class Coord {
 public:
  Coord() = default;
  Coord(std::initializer_list<int> values) {
    assert(values.size() <= kMaxDims);
    for (int v : values) v_[nd_++] = v;
  }
  static Coord zeros(int ndims) {
    Coord c;
    c.nd_ = ndims;
    return c;
  }

  [[nodiscard]] int ndims() const noexcept { return nd_; }
  int& operator[](int d) {
    assert(d >= 0 && d < nd_);
    return v_[static_cast<std::size_t>(d)];
  }
  int operator[](int d) const {
    assert(d >= 0 && d < nd_);
    return v_[static_cast<std::size_t>(d)];
  }

  friend bool operator==(const Coord& a, const Coord& b) {
    if (a.nd_ != b.nd_) return false;
    for (int d = 0; d < a.nd_; ++d) {
      if (a.v_[static_cast<std::size_t>(d)] !=
          b.v_[static_cast<std::size_t>(d)])
        return false;
    }
    return true;
  }
  friend bool operator!=(const Coord& a, const Coord& b) { return !(a == b); }

  [[nodiscard]] std::string str() const {
    std::string s = "(";
    for (int d = 0; d < nd_; ++d) {
      if (d) s += ",";
      s += std::to_string(v_[static_cast<std::size_t>(d)]);
    }
    return s + ")";
  }

 private:
  std::array<int, kMaxDims> v_{};
  int nd_ = 0;
};

/// One of the 2*ndims link directions leaving a node: +dim or -dim.
struct Dir {
  std::int8_t dim = 0;
  std::int8_t sign = +1;  // +1 or -1

  /// Dense index in [0, 2*ndims): +x,-x,+y,-y,...
  [[nodiscard]] int index() const noexcept {
    return 2 * dim + (sign > 0 ? 0 : 1);
  }
  static Dir from_index(int idx) {
    return Dir{static_cast<std::int8_t>(idx / 2),
               static_cast<std::int8_t>(idx % 2 == 0 ? +1 : -1)};
  }
  [[nodiscard]] Dir opposite() const noexcept {
    return Dir{dim, static_cast<std::int8_t>(-sign)};
  }
  friend bool operator==(const Dir& a, const Dir& b) {
    return a.dim == b.dim && a.sign == b.sign;
  }
  [[nodiscard]] std::string str() const {
    return std::string(sign > 0 ? "+" : "-") + char('x' + dim);
  }
};

}  // namespace meshmp::topo
