#pragma once

// Memoized degraded-mode route tables.
//
// Torus::route_table_avoiding is a full BFS over the torus — cheap once, but
// the membership layer recomputes a node's table on *every* dead-boundary
// transition it applies, and during a partition (or a flood of correlated
// deaths) hundreds of nodes churn through the same handful of avoidance
// sets. This cache keys computed tables by (source rank, FNV-1a digest of
// the dead bitset) so repeated membership deltas that land on an
// already-seen avoidance set reuse the table instead of re-running BFS.
//
// The stored dead set is compared on every digest hit, so a digest collision
// degrades to a recompute, never to a wrong table. Entries persist until
// clear(); the map is a chk::FlatMap because route state must never iterate
// in hash order.
//
// The cache is shared by every node's failure handling, which under the
// parallel engine runs on per-node logical processes: the table is guarded
// by a chk::SimLock and get() hands out a copy rather than a reference into
// the map (an insert on another LP may rehash underneath a reference).

#include <cstdint>
#include <vector>

#include "chk/flat_map.hpp"
#include "chk/thread_annotations.hpp"
#include "topo/torus.hpp"

namespace meshmp::topo {

// meshmp-lint: shared-state
class RouteTableCache {
 public:
  /// The first-hop table for `src` avoiding `dead` and steering around
  /// `degraded` egress links, computed at most once per distinct
  /// (src, dead, degraded) triple — the degraded set is part of the cache
  /// key, so a score change can never be served a stale table. Returned by
  /// value: the cache may be hit from several logical processes, so
  /// references into it are not stable.
  std::vector<std::int8_t> get(const Torus& torus, Rank src,
                               const std::vector<bool>& dead,
                               const std::vector<DirMask>& degraded = {});

  /// Drops every entry (e.g. when the cluster heals and stale avoidance
  /// sets will never recur).
  void clear() {
    chk::SimLockGuard g(mu_);
    entries_.clear();
  }

  [[nodiscard]] std::uint64_t hits() const noexcept {
    chk::SimLockGuard g(mu_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    chk::SimLockGuard g(mu_);
    return misses_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    chk::SimLockGuard g(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    std::vector<bool> dead;  ///< collision check: digests are not identities
    std::vector<DirMask> degraded;  ///< part of the identity, like dead
    std::vector<std::int8_t> table;
  };
  static std::uint64_t key(Rank src, const std::vector<bool>& dead,
                           const std::vector<DirMask>& degraded);

  mutable chk::SimLock mu_;
  chk::FlatMap<std::uint64_t, Entry> entries_ MESHMP_GUARDED_BY(mu_);
  std::uint64_t hits_ MESHMP_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ MESHMP_GUARDED_BY(mu_) = 0;
};

}  // namespace meshmp::topo
